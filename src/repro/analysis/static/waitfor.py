"""Cross-handler wait-for graph: lint-time deadlock-freedom.

IVY's fault path waits on remote operations *while holding page-table
entry locks*, and the servers for those operations acquire entry locks
of their own — the textbook shape of a distributed deadlock.  The
paper's design dodges it with three disciplines, which this module turns
into checkable obligations over the facts extracted by
:mod:`repro.analysis.static.facts`:

``multi-lock-wait`` (W3)
    At any *awaited* remote send, at most one entry lock may be held.
    Single-page critical sections make the client side of the wait-for
    graph a star around one lock class.

``hold-await-in-server`` (W2)
    A message handler must never await a remote operation while holding
    a lock.  Servers may *transiently* block on their local entry lock
    (fault servers do), but while holding it they only compute and
    reply — so a server's wait is always on a lock, never on another
    node's reply.

``collective-locking-server`` (W1)
    An op awaited as an all-replies collective while a lock is held
    (invalidations, update pushes) must have fully lock-free servers —
    a collective needs *every* target to answer, including nodes whose
    entry lock is held by their own in-flight fault, so even a transient
    blocking acquire closes the cycle.  (``try_acquire`` + RETRY is
    fine: it never blocks.)

The wait-for graph is built per manager class over two abstract node
kinds: the entry-lock class and the ops.  ``entry → op`` when a client
awaits op while holding a lock; ``op → entry`` when op's handler
(transitively) blocking-acquires; ``op → op'`` when op's handler awaits
op'.  An ``op → entry`` edge of a *transient* server (W2-clean, not
awaited as a held collective) is **discharged** by the ownership-order
axiom: same-page client/server chains follow the probable-owner
forwarding order, which the runtime keeps acyclic (the schedule
explorer model-checks this; see ``repro.analysis.schedules``).  The
remaining graph must be acyclic; any cycle is reported as
``waitfor-cycle`` with its path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.static.facts import (
    CallSite,
    ClassInfo,
    MethodInfo,
    ProjectFacts,
    Send,
    _resolve_op,
)
from repro.analysis.static.findings import Finding
from repro.analysis.static.locks import LockChecker

__all__ = ["ResolvedSend", "WaitforSummary", "expand_sends", "analyze"]

#: Reply schemes the sender actually waits on.
AWAITED_REPLIES = ("unicast", "all", "any")

#: Interprocedural expansion depth cap (the protocol call graph is ~3 deep).
MAX_DEPTH = 12

#: The abstract lock-class node of the wait-for graph.
ENTRY = "entry-lock"


@dataclass(frozen=True)
class ResolvedSend:
    """One remote send in one calling context."""

    op: str | None  # None: unresolvable (unbound parameter / dynamic)
    mode: str
    reply: str
    held: frozenset[str]  # lock/page-write keys held at the send
    line: int
    path: str
    method: str
    detached: bool  # reached through a fire-and-forget spawn


@dataclass
class WaitforSummary:
    """Per-manager-class proof summary for the CLI."""

    name: str
    path: str
    ops: list[str] = field(default_factory=list)
    held_await_ops: list[str] = field(default_factory=list)
    discharged_ops: list[str] = field(default_factory=list)
    acyclic: bool = True
    cycle: list[str] = field(default_factory=list)


def _module_lines(facts: ProjectFacts, path: str) -> list[str]:
    for module in facts.modules:
        if module.path == path:
            return module.source_lines
    return []


class _Expander:
    """Binding-aware interprocedural send expansion for one class."""

    def __init__(self, facts: ProjectFacts, class_name: str) -> None:
        self.facts = facts
        self.methods = facts.effective_methods(class_name)
        self._held: dict[str, dict[int, set[frozenset[str]]]] = {}
        self._seen: set[
            tuple[str, frozenset[str], tuple[tuple[str, str], ...]]
        ] = set()
        self.out: list[ResolvedSend] = []

    def _held_at(self, mname: str) -> dict[int, set[frozenset[str]]]:
        if mname not in self._held:
            cls, info = self.methods[mname]
            checker = LockChecker(
                info.fn, cls.path, _module_lines(self.facts, cls.path)
            )
            self._held[mname] = checker.held_at()
        return self._held[mname]

    def _local_holds(self, mname: str, line: int) -> set[frozenset[str]]:
        sets = self._held_at(mname).get(line)
        return sets if sets else {frozenset()}

    def _call_bindings(
        self, call: CallSite, caller_bind: dict[str, str]
    ) -> tuple[tuple[str, str], ...]:
        """Map the call's op-constant arguments onto callee parameters."""
        callee_fn = self.methods[call.callee][1].fn
        params = [a.arg for a in callee_fn.args.args]
        if params and params[0] == "self":
            params = params[1:]
        bound: dict[str, str] = {}

        def value_of(expr: ast.expr) -> str | None:
            ref = _resolve_op(expr, self.facts.constants, set(caller_bind))
            if ref.value is not None:
                return ref.value
            if ref.param is not None:
                return caller_bind.get(ref.param)
            return None

        for i, arg in enumerate(call.call.args):
            if i < len(params):
                val = value_of(arg)
                if val is not None:
                    bound[params[i]] = val
        for kw in call.call.keywords:
            if kw.arg is not None:
                val = value_of(kw.value)
                if val is not None:
                    bound[kw.arg] = val
        return tuple(sorted(bound.items()))

    def visit(
        self,
        mname: str,
        inherited: frozenset[str],
        bindings: tuple[tuple[str, str], ...],
        depth: int,
        detached: bool,
    ) -> None:
        if depth > MAX_DEPTH or mname not in self.methods:
            return
        key = (mname, inherited, bindings)
        if key in self._seen:
            return
        self._seen.add(key)
        cls, info = self.methods[mname]
        bind = dict(bindings)
        for send in info.sends:
            op = send.op.value
            if op is None and send.op.param is not None:
                op = bind.get(send.op.param)
            for local in self._local_holds(mname, send.line):
                self.out.append(
                    ResolvedSend(
                        op, send.mode, send.reply, inherited | local,
                        send.line, cls.path, mname,
                        detached or send.detached,
                    )
                )
        for call in info.calls:
            if call.callee not in self.methods:
                continue
            nested = self._call_bindings(call, bind)
            for local in self._local_holds(mname, call.line):
                self.visit(
                    call.callee,
                    inherited | local,
                    nested,
                    depth + 1,
                    detached or call.detached,
                )


def expand_sends(
    facts: ProjectFacts, class_name: str, roots: list[str] | None = None
) -> list[ResolvedSend]:
    """Every remote send reachable in ``class_name``, with the held-lock
    sets of every calling context.

    With ``roots=None`` the expansion starts at every method (so a
    helper's sends are seen both standalone and with each caller's held
    locks); with explicit roots (a handler name) it reports what *that*
    entry point can reach.
    """
    expander = _Expander(facts, class_name)
    for root in roots if roots is not None else sorted(expander.methods):
        expander.visit(root, frozenset(), (), 0, False)
    return expander.out


def _closure(
    methods: dict[str, tuple[ClassInfo, MethodInfo]], root: str
) -> set[str]:
    """Methods transitively reachable from ``root`` through awaited
    (non-detached) intra-class calls."""
    seen: set[str] = set()
    stack = [root]
    while stack:
        name = stack.pop()
        if name in seen or name not in methods:
            continue
        seen.add(name)
        for call in methods[name][1].calls:
            if not call.detached:
                stack.append(call.callee)
    return seen


def _find_cycle(edges: dict[str, set[str]]) -> list[str] | None:
    """Any directed cycle, as a node path ``[a, b, ..., a]``."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in edges}
    stack: list[str] = []

    def dfs(node: str) -> list[str] | None:
        color[node] = GRAY
        stack.append(node)
        for dst in sorted(edges.get(node, ())):
            if color.get(dst, WHITE) == GRAY:
                return stack[stack.index(dst):] + [dst]
            if color.get(dst, WHITE) == WHITE and dst in edges:
                found = dfs(dst)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(edges):
        if color[node] == WHITE:
            found = dfs(node)
            if found is not None:
                return found
    return None


def analyze(facts: ProjectFacts) -> tuple[list[Finding], list[WaitforSummary]]:
    findings: dict[tuple[str, str, int, str], Finding] = {}
    summaries: list[WaitforSummary] = []

    def add(rule: str, path: str, line: int, message: str, op: str = "") -> None:
        findings.setdefault(
            (rule, path, line, op), Finding(rule, path, line, message)
        )

    for cls_name in facts.manager_classes():
        cls = facts.classes[cls_name]
        methods = facts.effective_methods(cls_name)
        regs = facts.effective_registrations(cls_name)
        summary = WaitforSummary(cls_name, cls.path, ops=sorted(regs))

        sends = expand_sends(facts, cls_name)
        awaited = [
            s for s in sends if not s.detached and s.reply in AWAITED_REPLIES
        ]
        held_awaits = [s for s in awaited if s.held]

        # W3: single-page critical sections.
        for s in awaited:
            if len(s.held) >= 2:
                add(
                    "multi-lock-wait", s.path, s.line,
                    f"{s.method} awaits {s.op or s.mode} while holding "
                    f"{len(s.held)} locks ({', '.join(sorted(s.held))}): "
                    "critical sections spanning a remote wait must hold at "
                    "most one entry lock, or the wait-for graph gains a "
                    "lock-order cycle",
                    s.op or s.mode,
                )

        # Handler-side facts.
        blocking: dict[str, bool] = {}
        handler_held_awaits: dict[str, list[ResolvedSend]] = {}
        for op, (handler, _hcls, _line) in regs.items():
            blocking[op] = any(
                methods[m][1].blocking_acquires
                for m in _closure(methods, handler)
                if m in methods
            )
            handler_held_awaits[op] = [
                s
                for s in expand_sends(facts, cls_name, roots=[handler])
                if not s.detached and s.reply in AWAITED_REPLIES and s.held
            ]

        # W2: servers never await remotely while holding a lock.
        for op, bad in handler_held_awaits.items():
            for s in bad:
                add(
                    "hold-await-in-server", s.path, s.line,
                    f"handler {regs[op][0]} (op {op}) awaits "
                    f"{s.op or s.mode} while holding "
                    f"{', '.join(sorted(s.held))}: servers must release "
                    "before any remote wait (reply RETRY / Forward instead) "
                    "or the ownership-order discharge of the wait-for "
                    "graph no longer applies",
                    s.op or s.mode,
                )

        # W1: held all-replies collectives need fully lock-free servers.
        collective_held_ops: set[str] = set()
        for s in held_awaits:
            if s.reply != "all" or s.op is None or s.op not in regs:
                continue
            collective_held_ops.add(s.op)
            if blocking[s.op]:
                add(
                    "collective-locking-server", s.path, s.line,
                    f"{s.method} awaits all replies to {s.op} while holding "
                    f"{', '.join(sorted(s.held))}, but handler "
                    f"{regs[s.op][0]} blocking-acquires a lock: a collective "
                    "needs every target to answer, including nodes whose "
                    "entry lock is held by their own in-flight fault — the "
                    "server must be lock-free (try_acquire + RETRY at most)",
                    s.op,
                )

        # Wait-for graph.
        edges: dict[str, set[str]] = {ENTRY: set()}
        for s in held_awaits:
            if s.op is not None:
                edges[ENTRY].add(s.op)
        summary.held_await_ops = sorted(edges[ENTRY])
        for op in regs:
            edges.setdefault(op, set())
            for s in handler_held_awaits[op]:
                if s.op is not None:
                    edges[op].add(s.op)
            if blocking[op]:
                transient = not handler_held_awaits[op]
                discharged = transient and op not in collective_held_ops
                if discharged:
                    summary.discharged_ops.append(op)
                else:
                    edges[op].add(ENTRY)
        summary.discharged_ops.sort()

        cycle = _find_cycle(edges)
        if cycle is not None:
            summary.acyclic = False
            summary.cycle = cycle
            add(
                "waitfor-cycle", cls.path, cls.line,
                f"wait-for graph of {cls_name} has a cycle: "
                f"{' -> '.join(cycle)} (a held await whose servers can "
                "block on the held lock class; every node runs this "
                "manager, so the cycle can close across nodes)",
                "->".join(cycle),
            )
        summaries.append(summary)

    return list(findings.values()), summaries
