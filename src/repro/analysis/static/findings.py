"""Findings and reporters for the static protocol verifier.

A finding is one rule violation at one source location.  The rendered
string format (``path:line: message``) is shared with the legacy
``tools/lint_protocol.py`` CLI so existing tooling and tests keep
working; :func:`to_sarif` emits the same findings as a SARIF 2.1.0 log
for CI annotation/upload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Finding", "RULES", "render", "to_sarif"]

#: Rule registry: id -> one-line description (become SARIF rule metadata).
RULES: dict[str, str] = {
    "lock-free-server": (
        "invalidation-path servers (_serve_inv/_serve_update/_serve_hint) "
        "must never acquire a PageTableEntry lock"
    ),
    "lock-balance": (
        "a held entry lock must be released on every path out of the "
        "function, including exception edges"
    ),
    "return-in-finally": (
        "the finally of an effect generator may only clean up, never return"
    ),
    "page-write-balance": (
        "acquire_page_write sections must release_page_write on every path"
    ),
    "span-balance": (
        "a span opened in an effect generator must be closed on every path"
    ),
    "cancel-handle": (
        "schedule/schedule_at results must be kept, cancelled, or the "
        "_nocancel variant used"
    ),
    "waitfor-cycle": (
        "the cross-handler wait-for graph must be acyclic (static "
        "deadlock-freedom)"
    ),
    "hold-await-in-server": (
        "a message handler must not block on a remote operation while "
        "holding a lock (server transience)"
    ),
    "multi-lock-wait": (
        "at a blocking remote operation at most one lock may be held "
        "(single-page critical sections)"
    ),
    "collective-locking-server": (
        "an op awaited as an all-replies collective while a lock is held "
        "must have lock-free servers"
    ),
    "msg-unhandled": "an op is sent to nodes that register no handler for it",
    "msg-no-reply-path": (
        "a handler for a reply-awaited op may finish without an explicit "
        "reply value"
    ),
    "msg-noreply-unicast": (
        "a handler returns NO_REPLY for an op that is awaited point-to-point"
    ),
    "msg-dead-handler": "a registered handler's op is never sent by anyone",
    "footprint-under-declared": (
        "a message handler keys state by a payload projection its "
        "declared footprint extractor does not cover (POR would commute "
        "deliveries that actually conflict)"
    ),
    "footprint-unattributable": (
        "a message handler's effects cannot be attributed to the "
        "payload's page; its deliveries must conflict with everything"
    ),
    "fanout-unproven": (
        "an op declared fan-out-safe (_FANOUT_OPS) whose handler could "
        "not be proven to touch only the target's own per-page state"
    ),
    "aggregation-order-sensitive": (
        "reply aggregation at the origin could depend on reply arrival "
        "order (first-reply-wins without a unique-replier guard)"
    ),
    "det-wallclock": "wall-clock time sources are forbidden in simulated code",
    "det-unseeded-random": "unseeded random number generators are forbidden",
    "det-id-order": "id()-based ordering is address-dependent, not stable",
    "det-set-iteration": (
        "iterating a set in a scheduling path is hash-order dependent; "
        "wrap with sorted()"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str
    line: int
    message: str
    #: Extra structured context (cycle paths, op names) for reports.
    detail: dict[str, Any] = field(default_factory=dict, compare=False)

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.message}"


def render(findings: list[Finding]) -> list[str]:
    """Stable, human-readable one-line-per-finding rendering."""
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.message))
    return [f.render() for f in ordered]


def to_sarif(findings: list[Finding], tool_version: str = "1.0") -> dict[str, Any]:
    """SARIF 2.1.0 log for CI upload; one result per finding."""
    rule_ids = sorted({f.rule for f in findings} | set(RULES))
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {"startLine": max(1, f.line)},
                    }
                }
            ],
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-static-verify",
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro",
                        "rules": [
                            {
                                "id": rid,
                                "shortDescription": {
                                    "text": RULES.get(rid, rid)
                                },
                            }
                            for rid in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(findings: list[Finding], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_sarif(findings), fh, indent=2, sort_keys=True)
        fh.write("\n")
