"""Generic forward analysis over :mod:`repro.analysis.static.cfg`.

The driver explores *disjunctive* abstract states: instead of joining
states at merge points (which would lose the correlation between a
``locked`` flag and the lock it guards), it keeps a bounded **set** of
states per node and propagates each one separately — path sensitivity
for the price of a per-node cap.  When a node has accumulated
:data:`STATE_CAP` distinct states, further states are widened by
dropping their variable environment (the held-token set survives, so
soundness of the leak checks is preserved; only precision degrades).

An analysis implements three hooks:

``transfer(node, state) -> (normal_states, exc_states)``
    abstract effect of one statement; ``exc_states`` feed the node's
    exception edges (letting an acquire report "not held" when the
    acquire itself raised),
``refine(node, state, branch) -> state | None``
    path condition of a ``true``/``false`` edge; ``None`` kills the
    state (infeasible path),
``initial(cfg) -> iterable[state]``
    the entry states.

States must be hashable; convergence follows from the state space being
finite (tokens and environment values are drawn from the finite set of
program points).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Protocol

from repro.analysis.static.cfg import CFG, Node

__all__ = ["ForwardAnalysis", "run_forward", "STATE_CAP"]

#: Per-node bound on distinct abstract states before widening kicks in.
STATE_CAP = 64


class ForwardAnalysis(Protocol):
    def initial(self, cfg: CFG) -> Iterable[Any]: ...

    def transfer(
        self, node: Node, state: Any
    ) -> tuple[list[Any], list[Any]]: ...

    def refine(self, node: Node, state: Any, branch: bool) -> Any | None: ...

    def widen(self, state: Any) -> Any: ...


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> dict[int, set[Any]]:
    """Run ``analysis`` to fixpoint; returns the *in*-states per node."""
    seen: dict[int, set[Any]] = {nid: set() for nid in cfg.nodes}
    work: deque[tuple[int, Any]] = deque()

    for state in analysis.initial(cfg):
        if state not in seen[cfg.entry]:
            seen[cfg.entry].add(state)
            work.append((cfg.entry, state))

    while work:
        nid, state = work.popleft()
        node = cfg.nodes[nid]
        normal, exc = analysis.transfer(node, state)
        for dst, ekind in cfg.succs[nid]:
            if ekind == "exc":
                outs: list[Any | None] = list(exc)
            elif ekind == "normal":
                outs = list(normal)
            else:  # true / false branch edges
                outs = [
                    analysis.refine(node, post, ekind == "true")
                    for post in normal
                ]
            for out in outs:
                if out is None:
                    continue
                if len(seen[dst]) >= STATE_CAP:
                    out = analysis.widen(out)
                if out not in seen[dst]:
                    seen[dst].add(out)
                    work.append((dst, out))
    return seen
