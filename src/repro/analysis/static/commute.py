"""The proven commutativity matrix behind the explorer's POR.

:mod:`repro.analysis.explore` prunes schedules with a sleep-set partial
order reduction whose *independence relation* was, until now, hand
written: two same-tick deliveries commute when they land on different
nodes and either concern different pages or are both in the hard-coded
``_FANOUT_OPS`` set.  This module derives that relation from the
:mod:`footprints` effect analysis and emits it as a machine-readable
matrix, per algorithm:

- ``ops`` — which ops are *page-attributed* (their certified extractor
  provably names every page-keyed state access of the handler).  An op
  the analysis cannot attribute is demoted: the matrix marks it
  unattributed and the certified relation treats its deliveries as
  conflicting with everything (sound, merely unreduced).
- ``fanout_safe`` — the subset of the explorer's declared
  ``_FANOUT_OPS`` whose claim is *proven*: the handler touches only the
  target's own per-page state (no wildcard writes, no eviction-capable
  installs, no unkeyed manager state, no payload mutation, no awaited
  sends) and reply aggregation at the origin is order-insensitive for
  every scheme the op is sent under.  A declared-but-unproven op is a
  finding, never a silent matrix entry; a proven-but-undeclared op is
  deliberately *not* added (the matrix refines the hand-written claim,
  it does not extend it without review).
- ``same_node_commutes`` — the strict refinement over the hand-coded
  relation: pairs of attributed ops whose effects provably commute even
  when delivered *at the same node* for different pages.  Soundness
  leans on two established facts: the explorer's state equivalence is
  coherence-equivalence (``_fingerprint`` quotients out timing,
  counters and observation), and reply identity is emission-order
  stable (replies and forwards reuse the request's ``origin.msg_id``,
  ``repro.net.transport``), so reordering two handler executions can
  only be observed through genuinely shared state — which the effect
  pairs below rule out.  The physical frame pool's recency *order* is
  protocol state (it picks eviction victims), so ``touch×touch`` and
  ``install×anything`` conflict even for distinct pages.

Aggregation order-insensitivity per reply scheme: ``unicast`` replies
are matched by ``(origin, msg_id)``; ``all`` collectives gather keyed
by sender; ``none`` expects no replies; ``any`` (first reply wins) is
order-sensitive *unless* at most one target can reply — proven
syntactically by requiring every ``Reply`` return in the handler to be
dominated by an ``is_owner`` test (ownership is unique by the
single-owner invariant the PR 1 oracle enforces).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import ast

from repro.analysis.static import facts as facts_mod
from repro.analysis.static.findings import Finding
from repro.analysis.static.footprints import (
    ClassFootprints,
    Effect,
    EffectAnalyzer,
    OpFootprint,
    certify_class,
)

__all__ = [
    "MATRIX_VERSION",
    "CommuteSummary",
    "analyze",
    "to_matrix",
    "build_matrix",
    "save_matrix",
]

MATRIX_VERSION = 1

#: Stores exempt from every commutation obligation (observation axiom:
#: the explorer's fingerprint quotients them out and they never feed
#: back into protocol decisions).
_EXEMPT_STORES = frozenset({"counter", "obs"})


@dataclass
class CommuteSummary:
    """Per-algorithm certification result (one manager class)."""

    name: str  #: algorithm name (the class-body ``name`` attribute)
    class_name: str
    footprints: ClassFootprints
    fanout_declared: tuple[str, ...] = ()
    fanout_proven: tuple[str, ...] = ()
    same_node_commutes: list[tuple[str, str]] = field(default_factory=list)

    @property
    def attributed_ops(self) -> list[str]:
        return sorted(
            op for op, fp in self.footprints.ops.items() if fp.attributed
        )


# ----------------------------------------------------------------------
# effect-pair compatibility (same node, provably different pages)


def _page_keyed(key: str) -> bool:
    return key not in ("*", "other", "")


def _compatible(ea: Effect, eb: Effect) -> bool:
    """May the two effects be reordered when their page keys are known
    to denote *different* pages on the *same* node?"""
    if ea.store != eb.store:
        # attr:<x> vs attr:<y> and all cross-store pairs touch disjoint
        # state (the stores partition the per-node protocol state).
        return True
    store = ea.store
    if store in _EXEMPT_STORES:
        return True
    if store == "send":
        # Emissions commute (identity-stable replies, order-insensitive
        # aggregation is checked per op); an awaited send never gets
        # here (it demotes the op to unattributed).
        return ea.kind == "emit" and eb.kind == "emit"
    if store == "unknown" or store == "payload":
        return False
    if store == "pool":
        # Recency order is protocol state: eviction picks the LRU
        # victim.  Installs may evict (wildcard writes) and append to
        # the recency order; touches reorder it.
        if "install" in (ea.kind, eb.kind):
            return False
        if ea.kind == "touch" and eb.kind == "touch":
            return False
        if ea.kind == "read" and not _page_keyed(ea.key):
            return eb.kind == "read"  # whole-pool reads vs mutation
        if eb.kind == "read" and not _page_keyed(eb.key):
            return ea.kind == "read"
        return True  # keyed touch/drop/pin/read on distinct pages
    # entry / frame / disk / attr:<x>: reads always commute; once a
    # write (or lock) is involved both sides must be page-keyed, and
    # distinct pages mean distinct rows.
    if ea.kind == "read" and eb.kind == "read":
        return True
    return _page_keyed(ea.key) and _page_keyed(eb.key)


def _pair_commutes(fa: OpFootprint, fb: OpFootprint) -> bool:
    for ea in fa.effects:
        for eb in fb.effects:
            if not _compatible(ea, eb):
                return False
    return True


# ----------------------------------------------------------------------
# fan-out proof obligations


def _reply_schemes(
    facts: facts_mod.ProjectFacts, class_name: str, op: str
) -> set[str]:
    """Every reply scheme ``op`` is sent under anywhere in the class."""
    schemes: set[str] = set()
    for _cls, info in facts.effective_methods(class_name).values():
        for send in info.sends:
            if send.op.value == op:
                schemes.add(send.reply)
    return schemes


def _is_owner_test(test: ast.expr) -> bool | None:
    """True: the If body is owner-only; False: the orelse is."""
    if isinstance(test, ast.Attribute) and test.attr == "is_owner":
        return True
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Attribute)
        and test.operand.attr == "is_owner"
    ):
        return False
    return None


def _returns_reply(stmt: ast.Return) -> bool:
    # Any non-None return value is a reply at the transport layer
    # (bare acks like ``return True`` included); ``NO_REPLY`` and
    # ``return None`` are explicit silence.
    value = stmt.value
    if value is None:
        return False
    if isinstance(value, ast.Constant) and value.value is None:
        return False
    if isinstance(value, ast.Name) and value.id == "NO_REPLY":
        return False
    return True


def _replies_owner_guarded(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Every ``return Reply(...)`` dominated by an ``is_owner`` test.

    With single ownership, at most one broadcast target passes the
    guard, so a first-reply-wins (``any``) aggregation cannot observe
    delivery order."""

    def check(stmts: list[ast.stmt], guarded: bool) -> bool:
        ok = True
        for stmt in stmts:
            if isinstance(stmt, ast.Return):
                if _returns_reply(stmt) and not guarded:
                    ok = False
            elif isinstance(stmt, ast.If):
                owner = _is_owner_test(stmt.test)
                ok &= check(stmt.body, guarded or owner is True)
                ok &= check(stmt.orelse, guarded or owner is False)
            elif isinstance(stmt, (ast.For, ast.While, ast.With,
                                   ast.AsyncFor, ast.AsyncWith)):
                ok &= check(stmt.body, guarded)
                ok &= check(getattr(stmt, "orelse", []), guarded)
            elif isinstance(stmt, ast.Try):
                ok &= check(stmt.body, guarded)
                for handler in stmt.handlers:
                    ok &= check(handler.body, guarded)
                ok &= check(stmt.orelse, guarded)
                ok &= check(stmt.finalbody, guarded)
        return ok

    return check(list(fn.body), False)


def _aggregation_insensitive(
    facts: facts_mod.ProjectFacts,
    class_name: str,
    op: str,
    fp: OpFootprint,
) -> tuple[bool, str | None]:
    """(order-insensitive?, reason when not)."""
    schemes = _reply_schemes(facts, class_name, op)
    for scheme in sorted(schemes):
        if scheme in (facts_mod.REPLY_UNICAST, facts_mod.REPLY_ALL,
                      facts_mod.REPLY_NONE):
            continue  # msg_id-matched / sender-keyed gather / no replies
        if scheme == facts_mod.REPLY_ANY:
            found = facts.effective_methods(class_name).get(fp.handler)
            if found is not None and _replies_owner_guarded(found[1].fn):
                continue
            return False, (
                f"op {op!r} is awaited first-reply-wins (scheme 'any') but "
                f"{fp.handler_class}.{fp.handler} can reply without an "
                "is_owner guard — which reply wins depends on delivery order"
            )
        return False, (
            f"op {op!r} is sent under reply scheme {scheme!r}, which the "
            "analysis cannot prove order-insensitive"
        )
    return True, None


def _fanout_obligations(
    facts: facts_mod.ProjectFacts,
    class_name: str,
    op: str,
    fp: OpFootprint,
) -> list[tuple[str, str, str, int]]:
    """(rule, message, path, line) per violated obligation; empty=proven."""
    problems: list[tuple[str, str, str, int]] = []
    where = f"{fp.handler_class}.{fp.handler}"
    if not fp.attributed:
        problems.append((
            "fanout-unproven",
            f"op {op!r} is declared fan-out-safe but {where} is not "
            "page-attributable (see its footprint findings)",
            "", 0,
        ))
        return problems
    for e in sorted(fp.effects, key=lambda e: (e.store, e.key, e.kind)):
        if e.store in _EXEMPT_STORES:
            continue
        if e.store == "send":
            continue  # aggregation is its own obligation below
        if e.kind == "read":
            continue  # reads of per-node state never cross nodes
        if e.kind == "install":
            problems.append((
                "fanout-unproven",
                f"op {op!r}: {where} installs frames ({e.describe()}); an "
                "install may evict, rewriting entries beyond the op's page",
                e.path, e.line,
            ))
        elif not _page_keyed(e.key):
            problems.append((
                "fanout-unproven",
                f"op {op!r}: {where} mutates non-page-keyed state "
                f"({e.describe()}); the fan-out claim requires writes to "
                "the target's own per-page state only",
                e.path, e.line,
            ))
    ok, reason = _aggregation_insensitive(facts, class_name, op, fp)
    if not ok and reason is not None:
        found = facts.effective_methods(class_name).get(fp.handler)
        line = found[1].fn.lineno if found else 0
        path = found[0].path if found else ""
        problems.append(("aggregation-order-sensitive", reason, path, line))
    return problems


# ----------------------------------------------------------------------
# the analysis


def _declared_fanout_ops() -> frozenset[str]:
    # Imported lazily: explore sits above the static analyses and pulls
    # in the full simulation stack.
    from repro.analysis.explore import _FANOUT_OPS

    return frozenset(_FANOUT_OPS)


def analyze(
    facts: facts_mod.ProjectFacts,
) -> tuple[list[Finding], list[CommuteSummary]]:
    """Certify footprints and prove the commutativity matrix for every
    manager class in ``facts``."""
    findings: dict[tuple[str, str, int, str], Finding] = {}
    summaries: list[CommuteSummary] = []
    declared_fanout = _declared_fanout_ops()
    analyzer = EffectAnalyzer(facts)

    def add(rule: str, message: str, path: str, line: int) -> None:
        key = (rule, path, line, message)
        findings.setdefault(
            key, Finding(rule=rule, path=path, line=line, message=message)
        )

    for class_name in facts.manager_classes():
        fps = certify_class(facts, class_name, analyzer)
        summary = CommuteSummary(fps.algorithm, class_name, fps)
        for fp in fps.ops.values():
            for rule, message, path, line in fp.problems:
                add(rule, message, path or fps.path, line or fps.line)

        declared = sorted(declared_fanout & set(fps.ops))
        proven: list[str] = []
        agg_ok: dict[str, bool] = {}
        for op, fp in fps.ops.items():
            agg_ok[op], _ = _aggregation_insensitive(facts, class_name, op, fp)
        for op in declared:
            problems = _fanout_obligations(facts, class_name, op, fps.ops[op])
            if problems:
                for rule, message, path, line in problems:
                    add(rule, message, path or fps.path, line or fps.line)
            else:
                proven.append(op)
        summary.fanout_declared = tuple(declared)
        summary.fanout_proven = tuple(proven)

        # Same-node refinement: attributed ops whose effect pairs
        # commute for distinct pages, with order-insensitive emissions.
        attributed = [
            op for op, fp in sorted(fps.ops.items())
            if fp.attributed and (not fp.emits or agg_ok[op])
        ]
        pairs: list[tuple[str, str]] = []
        for i, a in enumerate(attributed):
            for b in attributed[i:]:
                if _pair_commutes(fps.ops[a], fps.ops[b]):
                    pairs.append((a, b))
        summary.same_node_commutes = pairs
        summaries.append(summary)

    return list(findings.values()), summaries


def to_matrix(summaries: list[CommuteSummary]) -> dict[str, Any]:
    """The machine-readable matrix ``explore.py`` loads."""
    algorithms: dict[str, Any] = {}
    for s in summaries:
        algorithms[s.name] = {
            "class": s.class_name,
            "ops": {
                op: {
                    "attributed": fp.attributed,
                    "projection": fp.declared,
                    "handler": f"{fp.handler_class}.{fp.handler}",
                }
                for op, fp in sorted(s.footprints.ops.items())
            },
            "fanout_declared": list(s.fanout_declared),
            "fanout_safe": list(s.fanout_proven),
            "same_node_commutes": [list(p) for p in s.same_node_commutes],
        }
    return {
        "version": MATRIX_VERSION,
        "generator": "repro.analysis.static.commute",
        "algorithms": algorithms,
    }


def build_matrix(root: str | None = None) -> dict[str, Any]:
    """Analyze the checkout's ``src/repro/svm`` and build the matrix.

    This is the explorer's certified-relation entry point; unlike the
    CI artifact path it tolerates findings (the matrix demotes what it
    cannot prove, which is exactly the conservative behaviour the
    certified relation wants)."""
    from pathlib import Path

    if root is None:
        root = str(Path(__file__).resolve().parents[4])
    svm = Path(root) / "src" / "repro" / "svm"
    if not svm.exists():
        raise FileNotFoundError(
            f"cannot build commutativity matrix: {svm} does not exist"
        )
    facts = facts_mod.collect(facts_mod.load_modules([str(svm)]))
    _findings, summaries = analyze(facts)
    return to_matrix(summaries)


def save_matrix(matrix: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(matrix, fh, indent=2, sort_keys=True)
        fh.write("\n")
