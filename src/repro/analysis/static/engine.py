"""Orchestration: which analyses run over which trees.

Three path sets, matching how strict each tree's contract is:

- **discipline** (the six legacy lint rules, now path-sensitive): the
  protocol, net, machine and obs trees — anywhere entry locks, spans or
  scheduled events live.
- **protocol** (wait-for graph + message matrix + footprint/commute
  certification): ``repro/svm`` — the manager classes.
- **determinism**: everything that executes inside simulated time —
  ``repro/sim``, ``svm``, ``net`` (including the ``repro.net.fabric``
  backends, whose per-link timing arithmetic must be a pure function
  of the seed), ``proc``, plus the *observational* obs modules whose
  outputs are asserted bit-for-bit (``timeline``/``sample``/``slo`` —
  windowed series, hash-based sampling, SLO evaluation).  (The rest of
  ``repro.obs`` profiles the simulator itself with real clocks and is
  deliberately exempt.)

:func:`run_default` is the CI entry point (exhaustive, fixed paths);
:func:`run_explicit` runs every analysis over caller-chosen paths (the
mutation-corpus tests use it); :func:`discipline_lint` is the narrow
façade the legacy ``tools/lint_protocol.py`` shim delegates to.
"""

from __future__ import annotations

from repro.analysis.static import commute as commute_mod
from repro.analysis.static import facts as facts_mod
from repro.analysis.static import messages, waitfor
from repro.analysis.static.determinism import determinism_findings
from repro.analysis.static.findings import Finding, render
from repro.analysis.static.locks import discipline_findings

__all__ = [
    "DISCIPLINE_PATHS",
    "PROTOCOL_PATHS",
    "DETERMINISM_PATHS",
    "StaticReport",
    "run_default",
    "run_explicit",
    "discipline_lint",
]

DISCIPLINE_PATHS = [
    "src/repro/svm",
    "src/repro/net",
    "src/repro/machine",
    "src/repro/obs",
]
PROTOCOL_PATHS = ["src/repro/svm"]
DETERMINISM_PATHS = [
    "src/repro/sim",
    "src/repro/svm",
    "src/repro/net",
    "src/repro/proc",
    # Deterministic-by-contract obs modules: their exports are asserted
    # bit-for-bit in CI, so the wall-clock/RNG bans apply file-by-file
    # (the rest of repro.obs stays exempt — it may time the simulator).
    "src/repro/obs/timeline.py",
    "src/repro/obs/sample.py",
    "src/repro/obs/slo.py",
]


class StaticReport:
    """Findings plus the per-manager proof summaries for clean runs."""

    def __init__(
        self,
        findings: list[Finding],
        waitfor_summaries: list[waitfor.WaitforSummary],
        message_summaries: list[messages.MessageSummary],
        commute_summaries: list[commute_mod.CommuteSummary] | None = None,
    ) -> None:
        self.findings = findings
        self.waitfor_summaries = waitfor_summaries
        self.message_summaries = message_summaries
        self.commute_summaries = commute_summaries or []

    def commute_matrix(self) -> dict:
        """The certified commutativity matrix (see
        :func:`repro.analysis.static.commute.to_matrix`)."""
        return commute_mod.to_matrix(self.commute_summaries)

    def render_findings(self) -> list[str]:
        return render(self.findings)

    def render_summary(self) -> list[str]:
        """The proof obligations discharged, one manager per line."""
        lines = []
        msg_by_name = {s.name: s for s in self.message_summaries}
        for wf in self.waitfor_summaries:
            msg = msg_by_name.get(wf.name)
            graph = (
                "wait-for graph acyclic"
                if wf.acyclic
                else f"wait-for CYCLE: {' -> '.join(wf.cycle)}"
            )
            held = ", ".join(wf.held_await_ops) or "none"
            discharged = (
                f"; {len(wf.discharged_ops)} transient-server edge(s) "
                "discharged by the ownership-order axiom"
                if wf.discharged_ops
                else ""
            )
            lines.append(
                f"{wf.name}: {graph} ({len(wf.ops)} ops; held-await on "
                f"{held}{discharged})"
            )
            if msg is not None:
                coverage = (
                    "all sends handled, all reply paths total"
                    if not msg.unhandled and not msg.dead
                    else f"unhandled={msg.unhandled} dead={msg.dead}"
                )
                lines.append(
                    f"{wf.name}: message matrix {len(msg.sent_ops)} ops "
                    f"sent / {len(msg.registered_ops)} handled — {coverage}"
                )
        for cs in self.commute_summaries:
            total = len(cs.footprints.ops)
            attributed = len(cs.attributed_ops)
            proven = ", ".join(cs.fanout_proven) or "none"
            declared = len(cs.fanout_declared)
            lines.append(
                f"{cs.name}: footprints certified {attributed}/{total} ops; "
                f"fan-out proven {len(cs.fanout_proven)}/{declared} "
                f"({proven}); {len(cs.same_node_commutes)} same-node "
                "commuting pair(s)"
            )
        return lines


def _discipline(modules: list[facts_mod.Module]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        findings += discipline_findings(
            module.path, module.tree, module.source_lines
        )
    return findings


def run_default(root: str | None = None) -> StaticReport:
    """The full verifier over the repo's fixed path sets.

    ``root`` defaults to the source checkout this package was imported
    from, so ``python -m repro.analysis.static`` works from any cwd.  A
    root whose fixed paths are missing is an error — a verifier that
    finds no files must never report "clean".
    """
    from pathlib import Path

    if root is None:
        # src/repro/analysis/static/engine.py -> the checkout root.
        root = str(Path(__file__).resolve().parents[4])

    def resolve(paths: list[str]) -> list[str]:
        resolved = [Path(root) / p for p in paths]
        missing = [str(p) for p in resolved if not p.exists()]
        if missing:
            raise FileNotFoundError(
                f"static verifier path set missing under {root!r}: {missing}"
            )
        return [str(p) for p in resolved]

    findings = _discipline(facts_mod.load_modules(resolve(DISCIPLINE_PATHS)))

    protocol_modules = facts_mod.load_modules(resolve(PROTOCOL_PATHS))
    facts = facts_mod.collect(protocol_modules)
    wf_findings, wf_summaries = waitfor.analyze(facts)
    msg_findings, msg_summaries = messages.analyze(facts)
    cm_findings, cm_summaries = commute_mod.analyze(facts)
    findings += wf_findings + msg_findings + cm_findings

    for module in facts_mod.load_modules(resolve(DETERMINISM_PATHS)):
        findings += determinism_findings(module)

    return StaticReport(findings, wf_summaries, msg_summaries, cm_summaries)


def run_explicit(paths: list[str]) -> StaticReport:
    """Every analysis over caller-chosen files/directories."""
    modules = facts_mod.load_modules(paths)
    findings = _discipline(modules)
    facts = facts_mod.collect(modules)
    wf_findings, wf_summaries = waitfor.analyze(facts)
    msg_findings, msg_summaries = messages.analyze(facts)
    cm_findings, cm_summaries = commute_mod.analyze(facts)
    findings += wf_findings + msg_findings + cm_findings
    for module in modules:
        findings += determinism_findings(module)
    return StaticReport(findings, wf_summaries, msg_summaries, cm_summaries)


def discipline_lint(paths: list[str]) -> list[str]:
    """The legacy linter's contract: discipline rules only, rendered as
    ``path:line: message`` strings."""
    return render(_discipline(facts_mod.load_modules(paths)))
