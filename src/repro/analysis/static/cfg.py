"""Control-flow graphs for Python function bodies.

The builder lowers one ``ast.FunctionDef`` into a graph of simple
statement nodes with four edge kinds:

``normal``
    fall-through to the next statement,
``true`` / ``false``
    the two outcomes of an ``if``/``while``/``for`` test,
``exc``
    the statement raised; control transfers to the innermost handler
    chain, then out through any ``finally`` blocks.

``try``/``finally`` is handled by *duplication*: the ``finally`` body is
lowered once per exit kind that can reach it (normal completion,
exception, ``return``, ``break``, ``continue``), each copy continuing to
that exit's real target.  This is what makes the lock/span balance
analyses path-aware on exception edges without any special-casing in the
analyses themselves.

Exception edges are added only where a statement *may plausibly raise*
(:func:`may_raise`): calls, yields, awaits, subscripts, attribute
stores, ``raise``, ``assert``.  Plain local assignments (``locked =
True``) and attribute reads bound to a name (``sid = span.sid``) do not
get exception edges — that precision is load-bearing: the protocol's
``locked``-flag and span-capture idioms sit between an acquire and its
``try`` and must not spawn spurious leak paths.

``match`` statements and other unmodelled compounds are lowered as
opaque single nodes (their bodies are not traversed); none occur in the
analyzed tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, NamedTuple

__all__ = ["CFG", "Node", "build_cfg", "may_raise", "function_defs"]

#: Nested scopes a same-function walk must not descend into.
SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def scope_walk(root: ast.AST | list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk every node under ``root`` without entering nested function
    scopes (their yields/returns belong to *their* analysis)."""
    stack: list[ast.AST] = list(root) if isinstance(root, list) else [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, SCOPE_BARRIERS):
            continue
        stack.extend(ast.iter_child_nodes(node))


def function_defs(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in ``tree``, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_generator(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom)) for node in scope_walk(fn.body)
    )


#: Expression nodes that make a statement a may-raise statement.
_RAISING_EXPRS = (ast.Call, ast.Yield, ast.YieldFrom, ast.Await, ast.Subscript)


def may_raise(node: ast.AST) -> bool:
    """Whether executing ``node`` can plausibly raise.

    Deliberately narrow: arithmetic and attribute *reads* are treated as
    non-raising so that the bookkeeping statements the protocol places
    between an acquire and its ``try`` do not manufacture leak paths.
    """
    for inner in scope_walk(node):
        if isinstance(inner, _RAISING_EXPRS):
            return True
        if isinstance(inner, (ast.Raise, ast.Assert)):
            return True
        if isinstance(inner, ast.Attribute) and isinstance(
            inner.ctx, (ast.Store, ast.Del)
        ):
            return True
        if isinstance(inner, ast.Name) and isinstance(inner.ctx, ast.Del):
            return True
    return False


@dataclass
class Node:
    """One CFG node.

    ``kind`` is one of ``entry``, ``exit``, ``exc_exit``, ``stmt``,
    ``branch`` (an ``if``/``while``/``for`` test), ``return``, ``raise``
    or ``dispatch`` (synthetic fan-out to exception handlers).
    """

    nid: int
    kind: str
    stmt: ast.AST | None = None
    line: int = 0


class Context(NamedTuple):
    """Continuation targets during lowering (all node ids)."""

    nxt: int
    exc: int
    ret: int
    brk: int | None
    cont: int | None


@dataclass
class CFG:
    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: dict[int, Node] = field(default_factory=dict)
    succs: dict[int, list[tuple[int, str]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 1
    exc_exit: int = 2

    def node(self, nid: int) -> Node:
        return self.nodes[nid]

    def reachable(self) -> set[int]:
        """Node ids reachable from the entry node."""
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            nid = stack.pop()
            for dst, _ in self.succs.get(nid, ()):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return seen


class _Builder:
    def __init__(self, fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(fn)
        self._next = 0
        self.cfg.entry = self._new("entry", line=fn.lineno)
        self.cfg.exit = self._new("exit")
        self.cfg.exc_exit = self._new("exc_exit")

    def _new(self, kind: str, stmt: ast.AST | None = None, line: int = 0) -> int:
        nid = self._next
        self._next += 1
        if stmt is not None and not line:
            line = getattr(stmt, "lineno", 0)
        self.cfg.nodes[nid] = Node(nid, kind, stmt, line)
        self.cfg.succs[nid] = []
        return nid

    def _edge(self, src: int, dst: int, kind: str = "normal") -> None:
        self.cfg.succs[src].append((dst, kind))

    def build(self) -> CFG:
        ctx = Context(
            nxt=self.cfg.exit,
            exc=self.cfg.exc_exit,
            ret=self.cfg.exit,
            brk=None,
            cont=None,
        )
        first = self._block(self.cfg.func.body, ctx)
        self._edge(self.cfg.entry, first)
        return self.cfg

    # -- lowering ------------------------------------------------------

    def _block(self, stmts: list[ast.stmt], ctx: Context) -> int:
        nxt = ctx.nxt
        for stmt in reversed(stmts):
            nxt = self._stmt(stmt, ctx._replace(nxt=nxt))
        return nxt

    def _stmt(self, stmt: ast.stmt, ctx: Context) -> int:
        if isinstance(stmt, ast.If):
            return self._if(stmt, ctx)
        if isinstance(stmt, ast.While):
            return self._while(stmt, ctx)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, ctx)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, ctx)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, ctx)
        if isinstance(stmt, ast.Return):
            nid = self._new("return", stmt)
            self._edge(nid, ctx.ret)
            if stmt.value is not None and may_raise(stmt.value):
                self._edge(nid, ctx.exc, "exc")
            return nid
        if isinstance(stmt, ast.Raise):
            nid = self._new("raise", stmt)
            self._edge(nid, ctx.exc, "exc")
            return nid
        if isinstance(stmt, ast.Break):
            nid = self._new("stmt", stmt)
            self._edge(nid, ctx.brk if ctx.brk is not None else ctx.nxt)
            return nid
        if isinstance(stmt, ast.Continue):
            nid = self._new("stmt", stmt)
            self._edge(nid, ctx.cont if ctx.cont is not None else ctx.nxt)
            return nid
        # Simple statement (assignments, expressions, nested defs, pass,
        # imports, asserts, and any unmodelled compound as one opaque
        # node).  Nested function/class bodies are opaque by design.
        nid = self._new("stmt", stmt)
        self._edge(nid, ctx.nxt)
        if not isinstance(stmt, SCOPE_BARRIERS + (ast.ClassDef,)) and may_raise(stmt):
            self._edge(nid, ctx.exc, "exc")
        return nid

    def _if(self, stmt: ast.If, ctx: Context) -> int:
        nid = self._new("branch", stmt)
        true = self._block(stmt.body, ctx)
        false = self._block(stmt.orelse, ctx)
        self._edge(nid, true, "true")
        self._edge(nid, false, "false")
        if may_raise(stmt.test):
            self._edge(nid, ctx.exc, "exc")
        return nid

    def _while(self, stmt: ast.While, ctx: Context) -> int:
        nid = self._new("branch", stmt)
        body = self._block(
            stmt.body, ctx._replace(brk=ctx.nxt, cont=nid)
        )
        self._edge(nid, body, "true")
        constant_true = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        if not constant_true:
            false = self._block(stmt.orelse, ctx)
            self._edge(nid, false, "false")
        if may_raise(stmt.test):
            self._edge(nid, ctx.exc, "exc")
        return nid

    def _for(self, stmt: ast.For | ast.AsyncFor, ctx: Context) -> int:
        nid = self._new("branch", stmt)
        body = self._block(
            stmt.body, ctx._replace(brk=ctx.nxt, cont=nid)
        )
        false = self._block(stmt.orelse, ctx)
        self._edge(nid, body, "true")
        self._edge(nid, false, "false")
        # The iteration protocol (and target unpacking) can always raise.
        self._edge(nid, ctx.exc, "exc")
        return nid

    def _with(self, stmt: ast.With | ast.AsyncWith, ctx: Context) -> int:
        # Context managers in the analyzed tree are transparent for the
        # tracked effects; the body keeps the surrounding continuations.
        nid = self._new("stmt", stmt)
        body = self._block(stmt.body, ctx)
        self._edge(nid, body)
        if any(may_raise(item.context_expr) for item in stmt.items):
            self._edge(nid, ctx.exc, "exc")
        return nid

    def _try(self, stmt: ast.Try, ctx: Context) -> int:
        if stmt.finalbody:
            # One copy of the finally per exit kind that can cross it.
            nxt_f = self._block(stmt.finalbody, ctx._replace(nxt=ctx.nxt))
            exc_f = self._block(stmt.finalbody, ctx._replace(nxt=ctx.exc))
            ret_f = self._block(stmt.finalbody, ctx._replace(nxt=ctx.ret))
            brk_f = (
                self._block(stmt.finalbody, ctx._replace(nxt=ctx.brk))
                if ctx.brk is not None
                else None
            )
            cont_f = (
                self._block(stmt.finalbody, ctx._replace(nxt=ctx.cont))
                if ctx.cont is not None
                else None
            )
        else:
            nxt_f, exc_f, ret_f = ctx.nxt, ctx.exc, ctx.ret
            brk_f, cont_f = ctx.brk, ctx.cont

        inner = Context(nxt=nxt_f, exc=exc_f, ret=ret_f, brk=brk_f, cont=cont_f)

        if stmt.handlers:
            dispatch = self._new("dispatch", stmt)
            for handler in stmt.handlers:
                h_entry = self._block(handler.body, inner)
                self._edge(dispatch, h_entry)
            # No handler matched (or a handler re-raised): the exception
            # still crosses the finally.
            self._edge(dispatch, exc_f, "exc")
            body_exc = dispatch
        else:
            body_exc = exc_f

        after_body = (
            self._block(stmt.orelse, inner) if stmt.orelse else nxt_f
        )
        return self._block(stmt.body, inner._replace(nxt=after_body, exc=body_exc))


def build_cfg(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Lower one function body to its control-flow graph."""
    return _Builder(fn).build()
