"""Protocol facts: classes, handlers, message sends, intra-class calls.

This is the syntactic substrate shared by the wait-for and
message-exhaustiveness analyses.  It extracts, per module and per class:

- op-name constants (``OP_READ = "svm.read"`` and friends, resolved
  project-wide so ``from ... import OP_READ`` works),
- handler registrations (``remote.register(OP_X, self._serve_x)``),
- remote sends (``.request``/``.broadcast``/``.multicast`` calls) with
  their op argument resolved to a constant, a callee parameter, or
  unknown,
- intra-class call sites (``self._helper(...)``) so the wait-for
  analysis can expand held-lock sets interprocedurally, with op
  constants threaded through callee parameters (this is how
  ``_locate_request(page, entry, op, write)`` is seen to send
  ``OP_READ``/``OP_WRITE``/``OP_CHOWN``),
- calls detached via ``.spawn(...)`` (fire-and-forget tasks are not
  awaited, so they contribute sends but never hold-awaits).

Class hierarchies are resolved by name across the analyzed files, so a
subclass manager inherits its base's registrations, sends and helpers —
a new MSI/LRC manager gets the whole verification for free by
subclassing ``CoherenceProtocol``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.static.cfg import scope_walk

__all__ = ["OpRef", "Send", "CallSite", "MethodInfo", "ClassInfo", "Module",
           "ProjectFacts", "collect", "load_modules"]

#: Reply expectation per send mode/scheme.
REPLY_UNICAST = "unicast"  # point-to-point, exactly one reply required
REPLY_ALL = "all"  # every target must reply
REPLY_ANY = "any"  # first reply wins; silence is legal
REPLY_NONE = "none"  # fire and forget


@dataclass(frozen=True)
class OpRef:
    """An op argument: resolved constant, callee parameter, or unknown."""

    value: str | None = None
    param: str | None = None


@dataclass
class Send:
    op: OpRef
    mode: str  # 'request' | 'broadcast' | 'multicast'
    reply: str  # one of the REPLY_* expectations
    line: int
    detached: bool


@dataclass
class CallSite:
    callee: str
    call: ast.Call
    line: int
    detached: bool


@dataclass
class MethodInfo:
    name: str
    fn: ast.FunctionDef | ast.AsyncFunctionDef
    sends: list[Send] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    registrations: list[tuple[str, str, int]] = field(default_factory=list)
    #: Contains a *blocking* lock acquisition (``.lock.acquire()`` or
    #: ``acquire_page_write``).  ``try_acquire`` is non-blocking and does
    #: not count: a server that try-acquires and replies RETRY never
    #: participates in a wait-for cycle.
    blocking_acquires: bool = False


@dataclass
class ClassInfo:
    name: str
    bases: list[str]
    path: str
    line: int
    methods: dict[str, MethodInfo] = field(default_factory=dict)


@dataclass
class Module:
    path: str
    tree: ast.Module
    source_lines: list[str]


@dataclass
class ProjectFacts:
    modules: list[Module] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)

    def mro(self, name: str) -> list[ClassInfo]:
        """The class and its known bases, nearest first (by-name, linear
        walk — fine for the single-inheritance protocol hierarchy)."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.add(current)
            info = self.classes[current]
            out.append(info)
            queue.extend(info.bases)
        return out

    def effective_methods(self, name: str) -> dict[str, tuple[ClassInfo, MethodInfo]]:
        """Method resolution: nearest definition wins."""
        methods: dict[str, tuple[ClassInfo, MethodInfo]] = {}
        for cls in self.mro(name):
            for mname, info in cls.methods.items():
                methods.setdefault(mname, (cls, info))
        return methods

    def effective_registrations(
        self, name: str
    ) -> dict[str, tuple[str, ClassInfo, int]]:
        """op → (handler method name, registering class, line)."""
        regs: dict[str, tuple[str, ClassInfo, int]] = {}
        for cls in self.mro(name):
            for info in cls.methods.values():
                for op, handler, line in info.registrations:
                    regs.setdefault(op, (handler, cls, line))
        return regs

    def manager_classes(self) -> list[str]:
        """Classes (transitively) registering at least one handler."""
        return sorted(
            name
            for name in self.classes
            if self.effective_registrations(name)
        )


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _spawn_argument_ids(fn: ast.AST) -> set[int]:
    """ids of every AST node inside an argument of a ``.spawn(...)`` call."""
    detached: set[int] = set()
    for node in scope_walk(fn):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "spawn"
        ):
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for inner in ast.walk(arg):
                detached.add(id(inner))
    return detached


def _resolve_op(
    expr: ast.expr | None,
    constants: dict[str, str],
    params: set[str],
) -> OpRef:
    if expr is None:
        return OpRef()
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return OpRef(value=expr.value)
    if isinstance(expr, ast.Name):
        if expr.id in constants:
            return OpRef(value=constants[expr.id])
        if expr.id in params:
            return OpRef(param=expr.id)
    return OpRef()


def _send_of(
    call: ast.Call, constants: dict[str, str], params: set[str], detached: bool
) -> Send | None:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
    if func.attr == "request":
        op = call.args[1] if len(call.args) > 1 else kwargs.get("op")
        return Send(
            _resolve_op(op, constants, params), "request", REPLY_UNICAST,
            call.lineno, detached,
        )
    if func.attr == "multicast":
        op = call.args[1] if len(call.args) > 1 else kwargs.get("op")
        return Send(
            _resolve_op(op, constants, params), "multicast", REPLY_ALL,
            call.lineno, detached,
        )
    if func.attr == "broadcast":
        op = call.args[0] if call.args else kwargs.get("op")
        scheme_expr = (
            call.args[3] if len(call.args) > 3 else kwargs.get("scheme")
        )
        scheme = "all"  # RemoteOp.broadcast's default reply scheme
        if isinstance(scheme_expr, ast.Constant) and isinstance(
            scheme_expr.value, str
        ):
            scheme = scheme_expr.value
        return Send(
            _resolve_op(op, constants, params), "broadcast", scheme,
            call.lineno, detached,
        )
    return None


def _method_info(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, constants: dict[str, str]
) -> MethodInfo:
    info = MethodInfo(fn.name, fn)
    params = {arg.arg for arg in fn.args.args + fn.args.kwonlyargs}
    detached_ids = _spawn_argument_ids(fn)
    for node in scope_walk(fn.body):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        detached = id(node) in detached_ids
        send = _send_of(node, constants, params, detached)
        if send is not None:
            info.sends.append(send)
            continue
        if func.attr == "register" and len(node.args) >= 2:
            op = _resolve_op(node.args[0], constants, params)
            handler = _base_name(node.args[1])
            if op.value is not None and handler is not None:
                info.registrations.append((op.value, handler, node.lineno))
            continue
        if func.attr == "acquire":
            base = func.value
            if isinstance(base, ast.Attribute) and base.attr == "lock":
                info.blocking_acquires = True
        elif func.attr == "acquire_page_write":
            info.blocking_acquires = True
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            info.calls.append(
                CallSite(func.attr, node, node.lineno, detached)
            )
    return info


def load_modules(paths: list[str]) -> list[Module]:
    modules: list[Module] = []
    for raw in paths:
        path = Path(raw)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            source = file.read_text(encoding="utf-8")
            modules.append(
                Module(str(file), ast.parse(source, filename=str(file)),
                       source.splitlines())
            )
    return modules


def collect(modules: list[Module]) -> ProjectFacts:
    facts = ProjectFacts(modules=modules)
    # Constants first, project-wide, so imports resolve across modules.
    for module in modules:
        for stmt in module.tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                facts.constants[stmt.targets[0].id] = stmt.value.value
    for module in modules:
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            bases = [b for b in (_base_name(base) for base in stmt.bases) if b]
            cls = ClassInfo(stmt.name, bases, module.path, stmt.lineno)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = _method_info(item, facts.constants)
            facts.classes[cls.name] = cls
    return facts
