"""Held-lock-set abstract interpretation over the protocol sources.

This is the path-sensitive port of the legacy lint's balance rules: it
tracks three kinds of *tokens* through each function's CFG —

- ``lock``: a held ``PageTableEntry`` lock (``<x>.lock.acquire()`` or the
  held branch of the ``try_acquire`` fast path),
- ``pw``: an open ``acquire_page_write`` section,
- ``span``: an open observability span (effect generators only),

and reports any token still held on a path out of the function
(normal *or* exceptional).  Because the analysis follows real control
flow, the idioms the old statement-shape rules needed special cases or
annotations for fall out naturally:

- ``if not e.lock.try_acquire(): yield from e.lock.acquire()`` — branch
  refinement holds the lock on the fall-through edge;
- the ``locked = True`` flag pattern of the fault servers — the
  environment tracks the flag, so ``finally: if locked: release()`` is
  understood per path;
- intentional hand-offs (``acquire_page_write`` returning the locked
  entry) — a token whose guarded object or binding variable appears in a
  ``return`` expression is being handed to the caller, which replaces
  the old ``# lint: keeps-lock`` annotation.

The legacy suppression comments are still honoured for cases the
inference cannot see (none remain in-tree).  The syntactic rules that
need no dataflow (lock-free servers, ``return`` in a generator
``finally``, discarded ``CancelHandle``\\ s) are ported verbatim.
"""

from __future__ import annotations

import ast
from typing import Iterable, NamedTuple

from repro.analysis.static.cfg import (
    CFG,
    Node,
    build_cfg,
    function_defs,
    is_generator,
    scope_walk,
)
from repro.analysis.static.dataflow import run_forward
from repro.analysis.static.findings import Finding

__all__ = [
    "LOCK_FREE_SERVERS",
    "SUPPRESS_COMMENT",
    "SUPPRESS_HANDLE_COMMENT",
    "LockChecker",
    "discipline_findings",
]

#: Servers that must stay lock-free (the classic deadlock cycle).
LOCK_FREE_SERVERS = ("_serve_inv", "_serve_update", "_serve_hint")

SUPPRESS_COMMENT = "# lint: keeps-lock"
SUPPRESS_HANDLE_COMMENT = "# lint: drops-handle"


class Token(NamedTuple):
    kind: str  # 'lock' | 'pw' | 'span'
    key: str  # lock expression, or a per-site key for pw/span
    line: int
    suppressed: bool


#: Abstract environment values.  A binding may also be ("tok", Token).
EnvVal = tuple[object, ...]

V_TRUE: EnvVal = ("true",)
V_FALSE: EnvVal = ("false",)
V_NONE: EnvVal = ("none",)
V_NULLSPAN: EnvVal = ("nullspan",)  # NULL_SPAN: not None, truthiness unknown


class LState(NamedTuple):
    held: frozenset[Token]
    env: tuple[tuple[str, EnvVal], ...]  # sorted; absence means "unknown"


def _env_get(state: LState, name: str) -> EnvVal | None:
    for key, value in state.env:
        if key == name:
            return value
    return None


def _env_set(state: LState, name: str, value: EnvVal | None) -> LState:
    items = [(k, v) for k, v in state.env if k != name]
    if value is not None:
        items.append((name, value))
    return LState(state.held, tuple(sorted(items)))


def _last2(expr: str) -> str:
    return ".".join(expr.split(".")[-2:])


def _is_lock_call(node: ast.AST, method: str) -> ast.expr | None:
    """``<x>.lock.<method>(...)`` → the ``<x>.lock`` expression."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == method):
        return None
    base = func.value
    if isinstance(base, ast.Attribute) and base.attr == "lock":
        return base
    return None


def _attr_calls(node: ast.AST, method: str) -> list[ast.Call]:
    return [
        inner
        for inner in scope_walk(node)
        if isinstance(inner, ast.Call)
        and isinstance(inner.func, ast.Attribute)
        and inner.func.attr == method
    ]


class LockChecker:
    """Run the token analysis over one function."""

    def __init__(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        path: str,
        source_lines: list[str],
        *,
        track_locks: bool = True,
        track_spans: bool | None = None,
    ) -> None:
        self.fn = fn
        self.path = path
        self.source_lines = source_lines
        self.track_locks = track_locks and fn.name not in LOCK_FREE_SERVERS
        self.track_spans = (
            is_generator(fn) if track_spans is None else track_spans
        )
        self.cfg: CFG = build_cfg(fn)
        self.states = run_forward(self.cfg, self)
        self._handed = self._handed_tokens()

    # -- analysis hooks ------------------------------------------------

    def initial(self, cfg: CFG) -> Iterable[LState]:
        return [LState(frozenset(), ())]

    def widen(self, state: LState) -> LState:
        return LState(state.held, ())

    def _suppressed_line(self, lineno: int) -> bool:
        line = (
            self.source_lines[lineno - 1]
            if 0 < lineno <= len(self.source_lines)
            else ""
        )
        return SUPPRESS_COMMENT in line

    def _tokens_in(self, expr: ast.AST, stmt_line: int) -> list[Token]:
        """Tokens created by evaluating ``expr`` (no IfExp splitting)."""
        tokens: list[Token] = []
        for node in scope_walk(expr):
            if not isinstance(node, ast.Call):
                continue
            line = getattr(node, "lineno", stmt_line)
            suppressed = self._suppressed_line(line) or self._suppressed_line(
                stmt_line
            )
            lock = _is_lock_call(node, "acquire")
            if lock is not None and self.track_locks:
                tokens.append(Token("lock", ast.unparse(lock), line, suppressed))
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "acquire_page_write":
                tokens.append(
                    Token("pw", f"page-write@{line}", line, suppressed)
                )
            elif func.attr == "span_begin" and self.track_spans:
                tokens.append(Token("span", f"span@{line}", line, suppressed))
        return tokens

    def _apply_releases(self, stmt: ast.AST, state: LState) -> LState:
        held: set[Token] = set(state.held)
        env = state.env
        for node in scope_walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            lock = _is_lock_call(node, "release")
            if lock is not None:
                wanted = ast.unparse(lock)
                held = {
                    tok
                    for tok in held
                    if not (
                        tok.kind == "lock"
                        and (tok.key == wanted or _last2(tok.key) == _last2(wanted))
                    )
                }
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "release_page_write":
                held = {tok for tok in held if tok.kind != "pw"}
            elif func.attr in ("span_end", "span_account") and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Name):
                    bound = _env_get(state, arg.id)
                    if bound is not None and bound[0] == "tok":
                        closed = bound[1]
                        if isinstance(closed, Token):
                            held.discard(closed)
        return LState(frozenset(held), env)

    @staticmethod
    def _const_value(expr: ast.expr) -> EnvVal | None:
        if isinstance(expr, ast.Constant):
            if expr.value is True:
                return V_TRUE
            if expr.value is False:
                return V_FALSE
            if expr.value is None:
                return V_NONE
        if isinstance(expr, ast.Name) and expr.id == "NULL_SPAN":
            return V_NULLSPAN
        return None

    def _eval_value(
        self, expr: ast.expr, stmt_line: int
    ) -> list[tuple[list[Token], EnvVal | None]]:
        """Possible (created tokens, bound abstract value) outcomes."""
        if isinstance(expr, ast.IfExp):
            return self._eval_value(expr.body, stmt_line) + self._eval_value(
                expr.orelse, stmt_line
            )
        tokens = self._tokens_in(expr, stmt_line)
        if len(tokens) == 1:
            return [(tokens, ("tok", tokens[0]))]
        return [(tokens, self._const_value(expr))]

    def transfer(
        self, node: Node, state: LState
    ) -> tuple[list[LState], list[LState]]:
        if node.kind in ("entry", "exit", "exc_exit", "dispatch", "branch", "return"):
            return [state], [state]
        stmt = node.stmt
        assert stmt is not None
        base = self._apply_releases(stmt, state)

        target: str | None = None
        value: ast.expr | None = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            target, value = stmt.targets[0].id, stmt.value
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.value is not None
        ):
            target, value = stmt.target.id, stmt.value

        if target is not None and value is not None:
            outs: list[LState] = []
            for tokens, val in self._eval_value(value, node.line):
                post = LState(base.held | frozenset(tokens), base.env)
                outs.append(_env_set(post, target, val))
            return outs, [base]

        tokens = self._tokens_in(stmt, node.line)
        post = LState(base.held | frozenset(tokens), base.env)
        # Assignment through non-Name targets invalidates no tracked
        # bindings we rely on; rebinding a tracked Name is handled above.
        return [post], [base if tokens else post]

    def _try_acquire_lock(self, test: ast.expr) -> tuple[ast.expr | None, bool]:
        """(lock expr, held-on-true?) for ``try_acquire`` branch tests."""
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            lock = _is_lock_call(test.operand, "try_acquire")
            if lock is not None:
                return lock, False
            return None, False
        lock = _is_lock_call(test, "try_acquire")
        if lock is not None:
            return lock, True
        return None, False

    def refine(self, node: Node, state: LState, branch: bool) -> LState | None:
        stmt = node.stmt
        assert stmt is not None
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            if branch and isinstance(stmt.target, ast.Name):
                return _env_set(state, stmt.target.id, None)
            return state
        test = stmt.test if isinstance(stmt, (ast.If, ast.While)) else None
        if test is None:
            return state

        if self.track_locks:
            lock, held_on_true = self._try_acquire_lock(test)
            if lock is not None:
                if branch == held_on_true:
                    tok = Token(
                        "lock",
                        ast.unparse(lock),
                        node.line,
                        self._suppressed_line(node.line),
                    )
                    return LState(state.held | {tok}, state.env)
                return state

        negate = False
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            test, negate = test.operand, True
        if negate:
            branch = not branch

        if isinstance(test, ast.Name):
            val = _env_get(state, test.id)
            if val in (V_FALSE, V_NONE):
                return None if branch else state
            if val == V_TRUE or (isinstance(val, tuple) and val[0] == "tok"):
                return state if branch else None
            return state

        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.IsNot))
            and isinstance(test.left, ast.Name)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            is_none_branch = branch == isinstance(test.ops[0], ast.Is)
            val = _env_get(state, test.left.id)
            if val == V_NONE:
                return state if is_none_branch else None
            if val is not None:  # TRUE / FALSE / NULLSPAN / token: not None
                return None if is_none_branch else state
            if is_none_branch:
                return _env_set(state, test.left.id, V_NONE)
            return state

        return state

    # -- results -------------------------------------------------------

    def _handed_tokens(self) -> set[Token]:
        """Tokens intentionally handed to the caller via ``return``."""
        handed: set[Token] = set()
        for nid, node in self.cfg.nodes.items():
            if node.kind != "return":
                continue
            ret = node.stmt
            assert isinstance(ret, ast.Return)
            if ret.value is None:
                continue
            names = {
                inner.id
                for inner in scope_walk(ret.value)
                if isinstance(inner, ast.Name)
            }
            exprs = {
                ast.unparse(inner)
                for inner in scope_walk(ret.value)
                if isinstance(inner, (ast.Name, ast.Attribute))
            }
            for state in self.states.get(nid, ()):
                for tok in state.held:
                    if tok.kind == "lock":
                        guarded = tok.key[: -len(".lock")]
                        if guarded in exprs:
                            handed.add(tok)
                    else:
                        for name, val in state.env:
                            if (
                                name in names
                                and isinstance(val, tuple)
                                and val
                                and val[0] == "tok"
                                and val[1] == tok
                            ):
                                handed.add(tok)
        return handed

    def leak_findings(self) -> list[Finding]:
        leaked: dict[tuple[str, str], Token] = {}
        for nid in (self.cfg.exit, self.cfg.exc_exit):
            for state in self.states.get(nid, ()):
                for tok in state.held:
                    if tok.suppressed or tok in self._handed:
                        continue
                    leaked.setdefault((tok.kind, tok.key), tok)
        findings = []
        for (kind, key), tok in sorted(leaked.items(), key=lambda kv: kv[1].line):
            if kind == "lock":
                message = (
                    f"{key}.acquire() may leak the held entry lock on a path "
                    f"out of {self.fn.name}: no try/finally releasing {key} "
                    "covers every exit (a leaked lock wedges every fault on "
                    f"the page; annotate with '{SUPPRESS_COMMENT}' if the "
                    "lock is intentionally handed to the caller)"
                )
                rule = "lock-balance"
            elif kind == "pw":
                message = (
                    "acquire_page_write(...) may leave the page-write section "
                    f"open on a path out of {self.fn.name}: no try/finally "
                    "calling release_page_write covers every exit (the page "
                    "would stay pinned with its entry lock held cluster-wide; "
                    f"annotate with '{SUPPRESS_COMMENT}' if the section is "
                    "intentionally handed to the caller)"
                )
                rule = "page-write-balance"
            else:
                message = (
                    f"span_begin(...) in effect generator {self.fn.name} may "
                    "leave its span open on a path out: no try/finally "
                    "calling span_end covers every exit (lost latency sample, "
                    "span drawn to end-of-run in the Perfetto export; "
                    f"annotate with '{SUPPRESS_COMMENT}' if the span is "
                    "intentionally handed to the caller)"
                )
                rule = "span-balance"
            findings.append(Finding(rule, self.path, tok.line, message))
        return findings

    def held_at(self) -> dict[int, set[frozenset[str]]]:
        """Possible held lock/page-write key sets per statement line
        (consumed by the wait-for analysis)."""
        held: dict[int, set[frozenset[str]]] = {}
        for nid, node in self.cfg.nodes.items():
            if node.stmt is None or not node.line:
                continue
            for state in self.states.get(nid, ()):
                keys = frozenset(
                    tok.key for tok in state.held if tok.kind in ("lock", "pw")
                )
                held.setdefault(node.line, set()).add(keys)
        return held


# ---------------------------------------------------------------------------
# syntactic rules (ported unchanged from the legacy linter)


def _lock_free_server_findings(
    path: str, tree: ast.Module
) -> list[Finding]:
    findings = []
    for fn in function_defs(tree):
        if fn.name not in LOCK_FREE_SERVERS:
            continue
        for inner in ast.walk(fn):
            lock = _is_lock_call(inner, "acquire")
            if lock is not None:
                findings.append(
                    Finding(
                        "lock-free-server",
                        path,
                        inner.lineno,
                        f"{fn.name} acquires {ast.unparse(lock)}: invalidation-"
                        "path servers must be lock-free (deadlock cycle; see "
                        "repro/svm/protocol.py)",
                    )
                )
    return findings


def _return_in_finally_findings(path: str, tree: ast.Module) -> list[Finding]:
    findings = []
    for fn in function_defs(tree):
        if not is_generator(fn):
            continue
        seen: set[int] = set()
        for inner in scope_walk(fn.body):
            if not (isinstance(inner, ast.Try) and inner.finalbody):
                continue
            for ret in scope_walk(inner.finalbody):
                if isinstance(ret, ast.Return) and ret.lineno not in seen:
                    seen.add(ret.lineno)
                    findings.append(
                        Finding(
                            "return-in-finally",
                            path,
                            ret.lineno,
                            f"return inside the finally of effect generator "
                            f"{fn.name}: it replaces whatever was in flight "
                            "(a propagating violation, a cancellation) with a "
                            "normal return — the finally may only clean up",
                        )
                    )
    return findings


def _discarded_handle_findings(
    path: str, tree: ast.Module, source_lines: list[str]
) -> list[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Expr):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("schedule", "schedule_at")
        ):
            continue
        line = (
            source_lines[node.lineno - 1]
            if node.lineno - 1 < len(source_lines)
            else ""
        )
        if SUPPRESS_HANDLE_COMMENT in line:
            continue
        variant = f"{func.attr}_nocancel"
        findings.append(
            Finding(
                "cancel-handle",
                path,
                node.lineno,
                f"{ast.unparse(func)}(...) discards its CancelHandle — "
                "these modules schedule an event per message/fault, so a "
                f"never-cancelled event must use {variant} (assign the "
                "handle if the event is genuinely cancellable; annotate "
                f"with '{SUPPRESS_HANDLE_COMMENT}' to override)",
            )
        )
    return findings


def discipline_findings(
    path: str, tree: ast.Module, source_lines: list[str]
) -> list[Finding]:
    """All six legacy rules, the balance rules path-sensitively."""
    findings = _lock_free_server_findings(path, tree)
    findings += _return_in_finally_findings(path, tree)
    findings += _discarded_handle_findings(path, tree, source_lines)
    for fn in function_defs(tree):
        findings += LockChecker(fn, path, source_lines).leak_findings()
    return findings
