"""Determinism lint: the simulation must be a pure function of its seed.

Every experiment in the repro is replayable — same config and seed,
same event trace, byte-identical metrics.  Four classes of constructs
silently break that contract inside the simulated world
(``repro.sim``/``svm``/``net``/``proc``) and are banned there:

``det-wallclock``
    ``time.time()``/``monotonic()``/``perf_counter()`` and
    ``datetime.now()`` read the host clock; simulated code must read
    ``sim.now``.  (Profiling of the *simulator itself* lives in
    ``repro.obs`` and is exempt by path — except the deterministic
    timeline/sampling/SLO modules, whose exports CI asserts
    bit-for-bit and which are therefore opted back in.)

``det-unseeded-random``
    the global ``random`` module, ``random.Random()``,
    ``np.random.default_rng()`` or ``SeedSequence()`` without a seed
    draw entropy from the OS; randomness must come from the named,
    cluster-seed-derived streams of ``repro.sim.rng``.

``det-id-order``
    sorting or min/max keyed on ``id(...)`` orders by CPython heap
    address, which varies run to run.

``det-set-iteration``
    iterating a set (or materialising one with ``tuple``/``list``)
    feeds hash order into the schedule; wrap the set in ``sorted(...)``
    first.  Membership tests, ``len`` and truthiness are fine.

Pure AST, per module; no dataflow needed.
"""

from __future__ import annotations

import ast

from repro.analysis.static.facts import Module
from repro.analysis.static.findings import Finding

__all__ = ["determinism_findings"]

_WALLCLOCK_ATTRS = (
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
)

#: Comprehension node types whose generators iterate.
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_set_expr(expr: ast.expr, set_names: set[str]) -> bool:
    """Syntactic 'this expression is a set' judgement."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in ("set", "frozenset"):
            return True
    if isinstance(expr, ast.Attribute) and expr.attr == "copy_set":
        return True
    if isinstance(expr, ast.Name) and expr.id in set_names:
        return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(expr.left, set_names) or _is_set_expr(
            expr.right, set_names
        )
    return False


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    rendered = ast.unparse(annotation)
    return rendered.startswith(("set[", "frozenset[", "Set[", "FrozenSet["))


def _set_names(tree: ast.Module) -> set[str]:
    """Names bound (anywhere in the module) to a set-valued expression.

    Flow-insensitive on purpose: a name that is *ever* a set is treated
    as a set at every iteration site, which errs towards reporting."""
    names: set[str] = set()
    changed = True
    while changed:
        changed = False
        for node in ast.walk(tree):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, node.annotation
            elif isinstance(node, ast.arg):
                if _annotation_is_set(node.annotation) and node.arg not in names:
                    names.add(node.arg)
                    changed = True
                continue
            else:
                continue
            if not isinstance(target, ast.Name) or target.id in names:
                continue
            if _annotation_is_set(annotation) or (
                value is not None and _is_set_expr(value, names)
            ):
                names.add(target.id)
                changed = True
    return names


def _contains_id_call(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        ):
            return True
        if isinstance(node, ast.Name) and node.id == "id":
            return True
    return False


def _imports_random(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                return True
    return False


def determinism_findings(module: Module) -> list[Finding]:
    findings: list[Finding] = []
    tree = module.tree
    path = module.path
    set_names = _set_names(tree)
    stdlib_random = _imports_random(tree)

    def add(rule: str, line: int, message: str) -> None:
        findings.append(Finding(rule, path, line, message))

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                base, attr = func.value.id, func.attr
                if base == "time" and attr in _WALLCLOCK_ATTRS:
                    add(
                        "det-wallclock", node.lineno,
                        f"time.{attr}() reads the host clock: simulated "
                        "code must read sim.now (wall-clock makes replays "
                        "diverge run to run)",
                    )
                elif base == "datetime" and attr in ("now", "utcnow", "today"):
                    add(
                        "det-wallclock", node.lineno,
                        f"datetime.{attr}() reads the host clock: simulated "
                        "code must derive timestamps from sim.now",
                    )
                elif base == "random" and stdlib_random:
                    if attr == "Random" and not node.args:
                        add(
                            "det-unseeded-random", node.lineno,
                            "random.Random() without a seed draws OS "
                            "entropy: use a repro.sim.rng stream",
                        )
                    elif attr != "Random":
                        add(
                            "det-unseeded-random", node.lineno,
                            f"random.{attr}() uses the process-global "
                            "generator: use a named repro.sim.rng stream "
                            "derived from the cluster seed",
                        )
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "default_rng"
                and not node.args
                and not node.keywords
            ):
                add(
                    "det-unseeded-random", node.lineno,
                    "default_rng() without a seed draws OS entropy: pass a "
                    "SeedSequence derived from the cluster seed",
                )
            if (
                isinstance(func, (ast.Name, ast.Attribute))
                and (
                    func.id if isinstance(func, ast.Name) else func.attr
                ) == "SeedSequence"
                and not node.args
                and not node.keywords
            ):
                add(
                    "det-unseeded-random", node.lineno,
                    "SeedSequence() without a seed draws OS entropy: derive "
                    "it from the cluster seed",
                )

            # id()-keyed ordering.
            is_order_call = (
                isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
            ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
            if is_order_call:
                for kw in node.keywords:
                    if kw.arg == "key" and _contains_id_call(kw.value):
                        add(
                            "det-id-order", node.lineno,
                            "ordering keyed on id() is heap-address order, "
                            "different every run: key on a stable field "
                            "(sequence number, name)",
                        )

            # tuple(<set>) / list(<set>) materialise hash order.
            if (
                isinstance(func, ast.Name)
                and func.id in ("tuple", "list")
                and len(node.args) == 1
                and _is_set_expr(node.args[0], set_names)
            ):
                add(
                    "det-set-iteration", node.lineno,
                    f"{func.id}(...) over a set materialises hash order "
                    "into the schedule: wrap the set in sorted(...) first",
                )

        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, _COMPREHENSIONS):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it, set_names):
                add(
                    "det-set-iteration", it.lineno,
                    "iterating a set feeds hash order into the schedule: "
                    "wrap the set in sorted(...) first",
                )

    return findings
