"""Message-exhaustiveness matrix: every send handled, every wait replied.

For each manager class (every node of a run instantiates exactly one),
the matrix cross-checks the ops it can *send* (interprocedurally
expanded, spawn-detached tasks included — they still put a message on
the wire) against the ops it *registers* handlers for:

``msg-unhandled``
    an op is sent but no handler is registered — at runtime the receiver
    raises on dispatch, but only on the schedule that exercises the
    send; this catches it at lint time for all schedules.

``msg-no-reply-path``
    a handler for a reply-awaited op (point-to-point request, or an
    all-replies collective) can finish without an explicit ``return``
    — falling off the end replies ``None``, which the waiting client
    happily installs as page data.  Also flagged: ``return NO_REPLY``
    from an all-replies collective (the barrier would wait forever).

``msg-noreply-unicast``
    a handler returns ``NO_REPLY`` for an op that is awaited
    point-to-point; staying silent is only legal for broadcast ops
    (the runtime raises, this catches it statically).

``msg-dead-handler``
    a registered op is never sent by any method of the class — dead
    protocol surface, usually a leftover from a refactor.

Replies delivered via ``Forward`` are fine: the forwarded-to server
answers instead, and forwarding chains are finite by the ownership
argument (see :mod:`repro.analysis.static.waitfor`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.static.cfg import CFG, build_cfg
from repro.analysis.static.facts import ProjectFacts
from repro.analysis.static.findings import Finding
from repro.analysis.static.waitfor import expand_sends

__all__ = ["MessageSummary", "analyze"]


@dataclass
class MessageSummary:
    """Per-manager-class message coverage for the CLI."""

    name: str
    sent_ops: list[str] = field(default_factory=list)
    registered_ops: list[str] = field(default_factory=list)
    unhandled: list[str] = field(default_factory=list)
    dead: list[str] = field(default_factory=list)


def _falls_off_end(cfg: CFG) -> bool:
    """Can control reach the normal exit without passing a ``return``?"""
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        nid = stack.pop()
        if cfg.nodes[nid].kind == "return":
            continue
        for dst, kind in cfg.succs.get(nid, ()):
            if kind == "exc":
                continue
            if dst == cfg.exit:
                return True
            if dst not in seen:
                seen.add(dst)
                stack.append(dst)
    return False


def _no_reply_returns(cfg: CFG) -> list[int]:
    """Lines of reachable ``return NO_REPLY`` statements."""
    lines = []
    reachable = cfg.reachable()
    for nid, node in cfg.nodes.items():
        if node.kind != "return" or nid not in reachable:
            continue
        ret = node.stmt
        assert isinstance(ret, ast.Return)
        if ret.value is None:
            continue
        rendered = ast.unparse(ret.value)
        if rendered == "NO_REPLY" or rendered.endswith(".NO_REPLY"):
            lines.append(node.line)
    return lines


def analyze(facts: ProjectFacts) -> tuple[list[Finding], list[MessageSummary]]:
    findings: dict[tuple[str, str, int, str], Finding] = {}
    summaries: list[MessageSummary] = []

    def add(rule: str, path: str, line: int, message: str, op: str) -> None:
        findings.setdefault(
            (rule, path, line, op), Finding(rule, path, line, message)
        )

    for cls_name in facts.manager_classes():
        methods = facts.effective_methods(cls_name)
        regs = facts.effective_registrations(cls_name)
        sends = expand_sends(facts, cls_name)

        sent_ops = sorted({s.op for s in sends if s.op is not None})
        summary = MessageSummary(cls_name, sent_ops, sorted(regs))

        # Reply expectation per op, from how the class awaits it.
        awaited_unicast: set[str] = set()
        awaited_all: set[str] = set()
        for s in sends:
            if s.op is None or s.detached:
                continue
            if s.reply == "unicast":
                awaited_unicast.add(s.op)
            elif s.reply == "all":
                awaited_all.add(s.op)

        for s in sends:
            if s.op is not None and s.op not in regs:
                summary.unhandled.append(s.op)
                add(
                    "msg-unhandled", s.path, s.line,
                    f"{s.method} sends {s.op} but {cls_name} registers no "
                    "handler for it: every node runs one manager class, so "
                    "the receiver's dispatch raises on the first schedule "
                    "that exercises this send",
                    s.op,
                )
        summary.unhandled = sorted(set(summary.unhandled))

        for op, (handler, hcls, reg_line) in regs.items():
            if op not in sent_ops:
                summary.dead.append(op)
                add(
                    "msg-dead-handler", hcls.path, reg_line,
                    f"{cls_name} registers {handler} for {op} but no method "
                    "ever sends it: dead protocol surface (drop the "
                    "registration or wire up the send)",
                    op,
                )
            if op not in awaited_unicast and op not in awaited_all:
                continue
            if handler not in methods:
                continue
            hdef_cls, hinfo = methods[handler]
            cfg = build_cfg(hinfo.fn)
            if _falls_off_end(cfg):
                add(
                    "msg-no-reply-path", hdef_cls.path, hinfo.fn.lineno,
                    f"handler {handler} (op {op}) can fall off the end "
                    "without a return: the waiting client receives None "
                    "as its reply value — every path must return a Reply, "
                    "Forward or NO_REPLY explicitly",
                    op,
                )
            for line in _no_reply_returns(cfg):
                if op in awaited_unicast:
                    add(
                        "msg-noreply-unicast", hdef_cls.path, line,
                        f"handler {handler} returns NO_REPLY but {op} is "
                        "awaited point-to-point: silence is only legal for "
                        "broadcast ops (the runtime raises on this; fixed "
                        "at lint time instead)",
                        op,
                    )
                elif op in awaited_all:
                    add(
                        "msg-no-reply-path", hdef_cls.path, line,
                        f"handler {handler} returns NO_REPLY but {op} is "
                        "awaited as an all-replies collective: the barrier "
                        "would wait forever for the missing reply",
                        op,
                    )
        summary.dead = sorted(summary.dead)
        summaries.append(summary)

    return list(findings.values()), summaries
