"""Static protocol verification (the lint-time half of ``repro.analysis``).

Where :mod:`repro.analysis.oracle` and :mod:`repro.analysis.explore`
check *executions* (one schedule at a time), this package checks the
*program text* — properties that hold for every schedule, proven at
lint time:

- :mod:`repro.analysis.static.cfg` — per-function control-flow graphs
  with exception edges and ``finally`` duplication;
- :mod:`repro.analysis.static.dataflow` — a generic disjunctive
  forward-analysis driver over those CFGs;
- :mod:`repro.analysis.static.locks` — held-lock/span abstract
  interpretation: the six legacy protocol-lint rules, now path-aware
  (the ``try_acquire`` fast path and keeps-lock hand-offs are inferred,
  not annotated);
- :mod:`repro.analysis.static.waitfor` — cross-handler lock-order and
  wait-for graph per manager class, proven acyclic (static
  deadlock-freedom for all four coherence managers);
- :mod:`repro.analysis.static.messages` — message-exhaustiveness
  matrix: every sent op has a handler, every awaited op a total reply
  path;
- :mod:`repro.analysis.static.determinism` — the simulation stays a
  pure function of its seed (no wall-clock, unseeded RNGs, id()
  ordering or raw set iteration);
- :mod:`repro.analysis.static.footprints` — interprocedural read/write
  effect analysis over every message handler, certifying the
  ``annotate_op``/``SCHED_FOOTPRINTS`` page extractors against the
  handler's actual page-keyed state accesses;
- :mod:`repro.analysis.static.commute` — from those effects, proves the
  explorer's ``_FANOUT_OPS`` claim handler-by-handler and emits the
  certified commutativity matrix that ``explore.py``'s
  ``certified_relation`` loads in place of the hand-coded
  ``independent()``.

Run ``python -m repro.analysis.static`` (optionally ``--sarif out.json``)
for the whole suite; ``tools/lint_protocol.py`` remains as a thin CLI
shim over the discipline rules.
"""

from repro.analysis.static.engine import (
    StaticReport,
    discipline_lint,
    run_default,
    run_explicit,
)
from repro.analysis.static.findings import Finding, render, to_sarif, write_sarif

__all__ = [
    "Finding",
    "StaticReport",
    "discipline_lint",
    "render",
    "run_default",
    "run_explicit",
    "to_sarif",
    "write_sarif",
]
