"""CLI: ``python -m repro.analysis.static [paths...] [--sarif FILE]``.

With no paths, runs the full verifier over the repo's fixed path sets
(lock discipline, wait-for deadlock-freedom, message exhaustiveness,
determinism) and prints the per-manager proof summary.  With explicit
paths, runs every analysis over just those files (what the mutation
corpus tests do).  ``--sarif`` additionally writes a SARIF 2.1.0 log
for CI annotation; ``--commute-matrix`` writes the certified
commutativity matrix the explorer's ``--relation certified`` mode
loads.  Exit status 1 iff there are findings.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.static.commute import save_matrix
from repro.analysis.static.engine import run_default, run_explicit
from repro.analysis.static.findings import write_sarif


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.static",
        description="static protocol verifier (see repro.analysis.static)",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories (default: the repo's fixed path sets)",
    )
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="also write the findings as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--commute-matrix", metavar="FILE",
        help="also write the certified commutativity matrix as JSON",
    )
    args = parser.parse_args(argv)

    report = run_explicit(args.paths) if args.paths else run_default()

    if args.sarif:
        write_sarif(report.findings, args.sarif)
    if args.commute_matrix:
        save_matrix(report.commute_matrix(), args.commute_matrix)

    for line in report.render_findings():
        print(line)
    if report.findings:
        print(f"{len(report.findings)} static-verify finding(s)")
        return 1
    for line in report.render_summary():
        print(line)
    print("static verify clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
