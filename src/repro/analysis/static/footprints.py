"""Interprocedural effect analysis over message handlers.

The schedule explorer's partial-order reduction rests on a claim about
*state footprints*: that the page number recovered from a delivery's
payload (by the ``annotate_op`` / ``SCHED_FOOTPRINTS`` extractors) names
exactly the per-page state the handler touches.  Until now that claim
was hand-written and unverified.  This module infers it from source.

For every registered handler we run an abstract interpretation over the
PR 5 CFG (:mod:`repro.analysis.static.cfg` + ``dataflow``): the abstract
environment maps local names to *payload projections* — ``payload``,
``payload[0]``, ``origin``, ``entry:payload`` (a page-table entry keyed
by the whole payload), ``frame:payload[0]`` (the physical frame keyed by
the payload's first element) and so on — and every statement's reads and
writes of protocol state are recorded as :class:`Effect` values
``(store, key, kind)``:

- ``entry`` — page-table entries (access bits, ownership, copy set,
  probOwner, epoch, the entry lock), keyed by page;
- ``pool`` — the physical-memory frame pool, whose recency *order* is
  state (LRU eviction), with kinds ``read``/``touch``/``drop``/``pin``/
  ``install`` (install may cascade into evictions: it also writes
  wildcard entries and disk);
- ``frame`` / ``disk`` — page image bytes in memory / on the paging
  disk, keyed by page;
- ``attr:<name>`` — per-instance manager state (``self._owners`` rows
  keyed by page; bare scalar reads and unkeyed writes use the ``*``
  key);
- ``payload`` — the delivered payload object itself (a *multicast
  payload is one shared object across all targets*, so a payload write
  is a covert cross-node channel);
- ``send`` — frame emissions (``emit``: replies, forwards, detached
  broadcasts — identity-stable, they reuse the request's
  ``origin.msg_id``) and awaited requests (``await``);
- ``counter`` / ``obs`` — monotone counters and pure observation,
  exempt by the observation axiom (they never feed back into protocol
  decisions and the explorer's state equivalence quotients them out);
- ``unknown`` — anything the analysis cannot classify (unrecognised
  call targets, writes through untracked aliases).

Method calls on ``self`` are expanded interprocedurally with the
argument projections bound to the callee's parameters (memoised per
``(class, method, bindings)``), so ``self.on_forward(page, ...)``
inside ``_serve_read`` contributes the subclass's owner-table write
*keyed by the handler's payload*.

:func:`certify_class` then checks each handler's inferred page keys
against its declared extractor — the certification the commutativity
matrix (:mod:`repro.analysis.static.commute`) is built on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.static import facts as facts_mod
from repro.analysis.static.cfg import CFG, Node, build_cfg
from repro.analysis.static.dataflow import run_forward

__all__ = [
    "Effect",
    "OpFootprint",
    "ClassFootprints",
    "EffectAnalyzer",
    "certify_class",
    "extractor_declarations",
    "projection_of_lambda",
]

#: ``self.<attr>`` roots with modelled semantics: attribute chains from
#: these stay symbolic (``self.pager.disk``) so calls on them resolve to
#: effects instead of degrading to ``unknown``.
_NEUTRAL_ROOTS = frozenset({
    "memory", "pager", "table", "remote", "obs", "trace", "checker",
    "sim", "config", "counters", "layout",
})

#: Mutating methods of the aliasable entry sub-objects (``copy_set``)
#: and of plain containers reached through ``self.<attr>``.
_MUTATORS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "update",
})

#: Read-only ndarray methods (anything else on a frame is a write).
_FRAME_READS = frozenset({
    "copy", "tobytes", "astype", "sum", "view", "mean", "any", "all",
})

#: Pure call targets by bare name; everything else unrecognised is
#: recorded as an ``unknown`` effect (conservative: demotes the op).
_NEUTRAL_CALLS = frozenset({
    "abs", "bool", "dict", "enumerate", "float", "frozenset", "int",
    "isinstance", "len", "list", "max", "min", "print", "range",
    "repr", "set", "sorted", "str", "sum", "tuple", "zip",
    "Compute", "Sleep", "Access",
})


@dataclass(frozen=True)
class Effect:
    """One abstract read or write of protocol state.

    ``key`` is a payload projection (``payload``, ``payload[0]``, ...),
    ``*`` (the whole store — eviction cascades, unkeyed container
    mutation, bare attribute access) or ``other`` (a value the analysis
    could not attribute to the payload).  ``path``/``line`` locate the
    statement for findings but do not participate in identity.
    """

    store: str
    key: str
    kind: str
    path: str = field(default="", compare=False)
    line: int = field(default=0, compare=False)

    def describe(self) -> str:
        key = f"[{self.key}]" if self.key else ""
        return f"{self.kind} {self.store}{key}"


@dataclass
class OpFootprint:
    """Certification result for one registered op of one class."""

    op: str
    handler: str
    handler_class: str
    declared: str | None  #: projection of the declared extractor
    used: tuple[str, ...]  #: page projections the handler actually keys by
    attributed: bool  #: page-attribution certified (sound to commute by page)
    emits: bool  #: replies/forwards/detached frames on some path
    awaits: bool  #: awaited request/broadcast on some path (demotes)
    effects: frozenset[Effect] = frozenset()
    #: (rule, message, path, line) tuples for the findings layer.
    problems: list[tuple[str, str, str, int]] = field(default_factory=list)


@dataclass
class ClassFootprints:
    """All certified ops of one manager class."""

    class_name: str
    algorithm: str  #: the class-body ``name`` attribute (or class name)
    path: str
    line: int
    ops: dict[str, OpFootprint] = field(default_factory=dict)


# ----------------------------------------------------------------------
# declared extractors


def projection_of_lambda(fn: ast.expr) -> str | None:
    """The payload projection a footprint extractor denotes.

    ``lambda page: page`` is the identity (``payload``); ``lambda p:
    p[i]`` projects element *i*.  Anything else is uncertifiable (the
    analysis cannot relate its result to the handler's state keys)."""
    if not isinstance(fn, ast.Lambda) or len(fn.args.args) != 1:
        return None
    param = fn.args.args[0].arg
    body = fn.body
    if isinstance(body, ast.Name) and body.id == param:
        return "payload"
    if (
        isinstance(body, ast.Subscript)
        and isinstance(body.value, ast.Name)
        and body.value.id == param
        and isinstance(body.slice, ast.Constant)
        and isinstance(body.slice.value, int)
    ):
        return f"payload[{body.slice.value}]"
    return None


def _resolve_op_key(expr: ast.expr, constants: dict[str, str]) -> str | None:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    if isinstance(expr, ast.Name):
        return constants.get(expr.id)
    return None


def _class_def(
    facts: facts_mod.ProjectFacts, cls: facts_mod.ClassInfo
) -> ast.ClassDef | None:
    for module in facts.modules:
        if module.path != cls.path:
            continue
        for stmt in module.tree.body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == cls.name:
                return stmt
    return None


def extractor_declarations(
    facts: facts_mod.ProjectFacts, class_name: str
) -> dict[str, str | None]:
    """op -> declared projection for ``class_name`` (None = extractor
    present but uncertifiable).

    Module-level ``annotate_op(OP_X, <lambda>)`` calls register globally;
    class-body ``SCHED_FOOTPRINTS`` dicts are merged along the MRO
    (nearest class wins) on top, mirroring the runtime registration
    order in ``CoherenceProtocol.__init__``."""
    declared: dict[str, str | None] = {}
    for module in facts.modules:
        for stmt in module.tree.body:
            if not (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Name)
                and stmt.value.func.id == "annotate_op"
                and len(stmt.value.args) == 2
            ):
                continue
            op = _resolve_op_key(stmt.value.args[0], facts.constants)
            if op is not None:
                declared[op] = projection_of_lambda(stmt.value.args[1])
    for cls in reversed(facts.mro(class_name)):  # base first, nearest wins
        body = _class_def(facts, cls)
        if body is None:
            continue
        for stmt in body.body:
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id == "SCHED_FOOTPRINTS":
                    value = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "SCHED_FOOTPRINTS"
                ):
                    value = stmt.value
            if not isinstance(value, ast.Dict):
                continue
            for key_expr, val_expr in zip(value.keys, value.values):
                if key_expr is None:
                    continue
                op = _resolve_op_key(key_expr, facts.constants)
                if op is not None:
                    declared[op] = projection_of_lambda(val_expr)
    return declared


def class_attribute(
    facts: facts_mod.ProjectFacts, class_name: str, attr: str
) -> str | None:
    """A class-body string attribute (``name = "dynamic"``), MRO-resolved."""
    for cls in facts.mro(class_name):
        body = _class_def(facts, cls)
        if body is None:
            continue
        for stmt in body.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == attr
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                return stmt.value.value
    return None


# ----------------------------------------------------------------------
# the abstract interpreter

#: Abstract values that stay meaningful across a call boundary.
_BINDABLE_PREFIXES = ("payload", "origin", "entry:", "part:", "frame:", "lock:")


def _bindable(value: str) -> str:
    return value if value.startswith(_BINDABLE_PREFIXES) else "other"


def _key_of(value: str) -> str:
    """The page key a value denotes when used as a store index."""
    if value == "payload" or value.startswith("payload["):
        return value
    return "other"


class _Collector:
    """Shared effect sink: first occurrence keeps its source location."""

    def __init__(self) -> None:
        self.effects: dict[Effect, Effect] = {}

    def add(self, effect: Effect) -> None:
        self.effects.setdefault(effect, effect)


class _EnvAnalysis:
    """Forward analysis whose state is the frozen local environment."""

    def __init__(self, evaluator: "_MethodEvaluator", init_env: dict[str, str]):
        self.evaluator = evaluator
        self.init_env = init_env

    def initial(self, cfg: CFG):
        return [frozenset(self.init_env.items())]

    def transfer(self, node: Node, state):
        env = dict(state)
        self.evaluator.execute(node, env)
        post = frozenset(env.items())
        # Exception edges keep the pre-statement environment: the
        # assignment may not have completed, and effects are a may-union
        # anyway.
        return [post], [state]

    def refine(self, node: Node, state, branch: bool):
        return state

    def widen(self, state):
        return frozenset()


class _MethodEvaluator:
    """Evaluates one method body, recording effects into a collector."""

    def __init__(
        self,
        analyzer: "EffectAnalyzer",
        root_class: str,
        path: str,
        collector: _Collector,
    ) -> None:
        self.analyzer = analyzer
        self.root_class = root_class
        self.path = path
        self.collector = collector

    def _emit(self, store: str, key: str, kind: str, node: ast.AST) -> None:
        self.collector.add(
            Effect(store, key, kind, self.path, getattr(node, "lineno", 0))
        )

    # -- statements ----------------------------------------------------

    def execute(self, node: Node, env: dict[str, str]) -> None:
        stmt = node.stmt
        if stmt is None:
            return
        if node.kind == "branch":
            if isinstance(stmt, (ast.If, ast.While)):
                self.eval(stmt.test, env)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self.eval(stmt.iter, env)
                self._bind_target(stmt.target, "other", env)
            return
        if node.kind == "dispatch":
            return
        if isinstance(stmt, (ast.Return, ast.Raise)):
            value = stmt.value if isinstance(stmt, ast.Return) else stmt.exc
            if value is not None:
                self.eval(value, env)
            return
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, stmt.value, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.eval(stmt.value, env), stmt.value, env)
            return
        if isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value, env)
            self._store_target(stmt.target, env, also_read=True)
            return
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, value, env)
            return
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            return
        if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global,
                             ast.Nonlocal, ast.Import, ast.ImportFrom,
                             ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Delete, ast.Try)):
            return
        # Unmodelled statement shapes degrade conservatively.
        self._emit("unknown", "", "stmt", stmt)

    def _bind_target(self, target: ast.expr, value: str, env: dict[str, str]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            for i, elt in enumerate(target.elts):
                if value == "payload":
                    self._bind_target(elt, f"payload[{i}]", env)
                else:
                    self._bind_target(elt, "other", env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, "other", env)

    def _assign(
        self,
        target: ast.expr,
        value: str,
        value_expr: ast.expr,
        env: dict[str, str],
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                for elt, src in zip(target.elts, value_expr.elts):
                    self._bind_target(elt, _bindable(self.eval(src, env)), env)
            else:
                self._bind_target(target, value, env)
            return
        self._store_target(target, env)

    def _store_target(
        self, target: ast.expr, env: dict[str, str], also_read: bool = False
    ) -> None:
        """An attribute or subscript used as an assignment target."""
        if isinstance(target, ast.Name):
            env[target.id] = "other"
            return
        if isinstance(target, ast.Attribute):
            base_expr = target.value
            if isinstance(base_expr, ast.Name) and base_expr.id == "self":
                self._emit(f"attr:{target.attr}", "*", "write", target)
                return
            base = self.eval(base_expr, env)
            if base.startswith(("entry:", "part:")):
                key = base.split(":", 1)[1]
                if also_read:
                    self._emit("entry", key, "read", target)
                self._emit("entry", key, "write", target)
            elif base.startswith("frame:"):
                self._emit("frame", base.split(":", 1)[1], "write", target)
            elif base == "payload" or base.startswith("payload["):
                self._emit("payload", base, "write", target)
            elif base == "obs":
                self._emit("obs", "", "note", target)
            else:
                self._emit("unknown", "", "write", target)
            return
        if isinstance(target, ast.Subscript):
            self.eval(target.slice, env)
            base_expr = target.value
            if (
                isinstance(base_expr, ast.Attribute)
                and isinstance(base_expr.value, ast.Name)
                and base_expr.value.id == "self"
            ):
                key = _key_of(self.eval(target.slice, env))
                self._emit(f"attr:{base_expr.attr}", key, "write", target)
                return
            base = self.eval(base_expr, env)
            if base.startswith("frame:"):
                self._emit("frame", base.split(":", 1)[1], "write", target)
            elif base.startswith(("entry:", "part:")):
                self._emit("entry", base.split(":", 1)[1], "write", target)
            elif base == "payload" or base.startswith("payload["):
                self._emit("payload", base, "write", target)
            else:
                self._emit("unknown", "", "write", target)
            return
        self._emit("unknown", "", "write", target)

    # -- expressions ---------------------------------------------------

    def eval(self, expr: ast.expr, env: dict[str, str]) -> str:
        """Abstract value of ``expr``; records its effects as it goes."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return "self"
            return env.get(expr.id, "other")
        if isinstance(expr, ast.Constant):
            return "other"
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Compare):
            return self._eval_compare(expr, env)
        if isinstance(expr, (ast.Yield, ast.YieldFrom, ast.Await)):
            if expr.value is not None:
                self.eval(expr.value, env)
            return "other"
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, env)
            self.eval(expr.body, env)
            self.eval(expr.orelse, env)
            return "other"
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                self.eval(value, env)
            return "other"
        if isinstance(expr, ast.BinOp):
            self.eval(expr.left, env)
            self.eval(expr.right, env)
            return "other"
        if isinstance(expr, ast.UnaryOp):
            self.eval(expr.operand, env)
            return "other"
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                self.eval(elt, env)
            return "other"
        if isinstance(expr, ast.Dict):
            for key in expr.keys:
                if key is not None:
                    self.eval(key, env)
            for value in expr.values:
                self.eval(value, env)
            return "other"
        if isinstance(expr, ast.JoinedStr):
            for value in expr.values:
                self.eval(value, env)
            return "other"
        if isinstance(expr, ast.FormattedValue):
            self.eval(expr.value, env)
            return "other"
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.Slice):
            for part in (expr.lower, expr.upper, expr.step):
                if part is not None:
                    self.eval(part, env)
            return "other"
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            # Comprehensions: evaluate the iterables (their effects are
            # real); element expressions see fresh names, approximated
            # by "other" bindings in a scratch environment.
            scratch = dict(env)
            for gen in expr.generators:
                self.eval(gen.iter, scratch)
                self._bind_target(gen.target, "other", scratch)
                for cond in gen.ifs:
                    self.eval(cond, scratch)
            if isinstance(expr, ast.DictComp):
                self.eval(expr.key, scratch)
                self.eval(expr.value, scratch)
            else:
                self.eval(expr.elt, scratch)
            return "other"
        if isinstance(expr, ast.Lambda):
            return "other"
        self._emit("unknown", "", "expr", expr)
        return "other"

    def _eval_attribute(self, expr: ast.Attribute, env: dict[str, str]) -> str:
        base = self.eval(expr.value, env)
        if base == "self":
            if expr.attr in _NEUTRAL_ROOTS:
                return f"self.{expr.attr}"
            # A bare read of per-instance state (scalars, flags, whole
            # containers): unkeyed.
            self._emit(f"attr:{expr.attr}", "*", "read", expr)
            return "other"
        if base.startswith("self."):
            return f"{base}.{expr.attr}"
        if base.startswith("entry:"):
            key = base.split(":", 1)[1]
            if expr.attr == "lock":
                return f"lock:{key}"
            self._emit("entry", key, "read", expr)
            if expr.attr == "copy_set":
                return f"part:{key}"
            return "other"
        if base.startswith("part:"):
            self._emit("entry", base.split(":", 1)[1], "read", expr)
            return "other"
        if base.startswith("frame:"):
            self._emit("frame", base.split(":", 1)[1], "read", expr)
            return "other"
        if base == "payload" or base.startswith("payload["):
            return "other"
        return "other"

    def _eval_subscript(self, expr: ast.Subscript, env: dict[str, str]) -> str:
        # self.<attr>[k]: a keyed row of per-instance manager state.
        if (
            isinstance(expr.value, ast.Attribute)
            and isinstance(expr.value.value, ast.Name)
            and expr.value.value.id == "self"
        ):
            key = _key_of(self.eval(expr.slice, env))
            self._emit(f"attr:{expr.value.attr}", key, "read", expr)
            return "other"
        base = self.eval(expr.value, env)
        index = self.eval(expr.slice, env)
        if base == "payload":
            if (
                isinstance(expr.slice, ast.Constant)
                and isinstance(expr.slice.value, int)
                and not isinstance(expr.slice.value, bool)
            ):
                return f"payload[{expr.slice.value}]"
            return "other"
        if base.startswith("frame:"):
            self._emit("frame", base.split(":", 1)[1], "read", expr)
            return "other"
        if base.startswith(("entry:", "part:")):
            self._emit("entry", base.split(":", 1)[1], "read", expr)
            return "other"
        del index
        return "other"

    def _eval_compare(self, expr: ast.Compare, env: dict[str, str]) -> str:
        left = self.eval(expr.left, env)
        current = left
        for op, comparator in zip(expr.ops, expr.comparators):
            right = self.eval(comparator, env)
            if isinstance(op, (ast.In, ast.NotIn)) and right == "self.memory":
                self._emit("pool", _key_of(current), "read", expr)
            current = right
        return "other"

    # -- calls ---------------------------------------------------------

    def _eval_call(self, expr: ast.Call, env: dict[str, str]) -> str:
        args = [self.eval(arg, env) for arg in expr.args]
        kwargs: dict[str, str] = {}
        for kw in expr.keywords:
            value = self.eval(kw.value, env)
            if kw.arg is not None:
                kwargs[kw.arg] = value
        func = expr.func
        if isinstance(func, ast.Name):
            return self._call_by_name(func.id, expr)
        if not isinstance(func, ast.Attribute):
            self._emit("unknown", "", "call", expr)
            return "other"
        meth = func.attr
        # self.<method>(...) — interprocedural expansion.
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            self._expand_self_call(meth, expr, args, kwargs)
            return "other"
        # self.<attr>.<meth>(...) — container rows of manager state.
        if (
            isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and func.value.attr not in _NEUTRAL_ROOTS
        ):
            return self._container_call(func.value.attr, meth, expr, args)
        receiver = self.eval(func.value, env)
        return self._receiver_call(receiver, meth, expr, args, kwargs)

    def _call_by_name(self, name: str, expr: ast.Call) -> str:
        if name in ("Reply", "Forward"):
            self._emit("send", "", "emit", expr)
            return "other"
        if name in _NEUTRAL_CALLS or name.endswith(("Error", "Exception")):
            return "other"
        self._emit("unknown", "", f"call:{name}", expr)
        return "other"

    def _container_call(
        self, attr: str, meth: str, expr: ast.Call, args: list[str]
    ) -> str:
        store = f"attr:{attr}"
        key = _key_of(args[0]) if args else "*"
        if meth == "get":
            self._emit(store, key, "read", expr)
        elif meth in ("pop", "setdefault", "add", "discard", "remove"):
            self._emit(store, key, "write", expr)
        elif meth in _MUTATORS:  # clear/update/popitem/append/extend/insert
            self._emit(store, "*", "write", expr)
        else:
            self._emit(store, "*", "read", expr)
        return "other"

    def _receiver_call(
        self,
        receiver: str,
        meth: str,
        expr: ast.Call,
        args: list[str],
        kwargs: dict[str, str],
    ) -> str:
        key = _key_of(args[0]) if args else "other"
        if receiver == "self.memory":
            if meth == "data":
                self._emit("pool", key, "touch", expr)
                self._emit("frame", key, "read", expr)
                return f"frame:{key}"
            if meth == "touch":
                self._emit("pool", key, "touch", expr)
            elif meth == "drop":
                self._emit("pool", key, "drop", expr)
            elif meth in ("pin", "unpin"):
                self._emit("pool", key, "pin", expr)
            elif meth in ("pinned", "__contains__", "frames_free", "resident"):
                self._emit("pool", key if args else "*", "read", expr)
            else:
                self._emit("pool", "*", "install", expr)
            return "other"
        if receiver == "self.pager":
            if meth in ("install", "try_install", "page_in"):
                # Installs may evict under frame pressure: the victim
                # entries and the paging disk are wildcard state.
                self._emit("pool", key, "install", expr)
                self._emit("entry", "*", "write", expr)
                self._emit("disk", "*", "write", expr)
            elif meth == "page_out":
                self._emit("pool", key, "drop", expr)
                self._emit("disk", key, "write", expr)
            else:
                self._emit("pool", "*", "install", expr)
                self._emit("disk", "*", "write", expr)
            return "other"
        if receiver == "self.pager.disk":
            if meth in ("read", "__contains__"):
                self._emit("disk", key, "read", expr)
            else:
                self._emit("disk", key, "write", expr)
            return "other"
        if receiver == "self.table":
            if meth == "entry":
                self._emit("entry", key, "read", expr)
                return f"entry:{key}"
            self._emit("entry", "*", "read", expr)
            return "other"
        if receiver == "self.counters":
            self._emit("counter", "", "inc", expr)
            return "other"
        if receiver in ("self.obs", "self.trace", "self.checker"):
            self._emit("obs", "", "note", expr)
            return "obs"
        if receiver == "self.remote" and meth in (
            "request", "broadcast", "multicast"
        ):
            scheme = kwargs.get("scheme")
            detached_none = meth == "broadcast" and self._scheme_is_none(expr)
            self._emit(
                "send", "", "emit" if detached_none else "await", expr
            )
            del scheme
            return "other"
        if receiver.startswith("self.remote"):
            # driver.spawn / register / local probes: emission or wiring.
            self._emit("send", "", "emit", expr)
            return "other"
        if receiver.startswith("lock:"):
            self._emit("entry", receiver.split(":", 1)[1], "lock", expr)
            return "other"
        if receiver.startswith("part:"):
            kind = "write" if meth in _MUTATORS else "read"
            self._emit("entry", receiver.split(":", 1)[1], kind, expr)
            return "other"
        if receiver.startswith("entry:"):
            # PageTableEntry methods (owner_access, ...) are pure queries.
            self._emit("entry", receiver.split(":", 1)[1], "read", expr)
            return "other"
        if receiver.startswith("frame:"):
            kind = "read" if meth in _FRAME_READS else "write"
            self._emit("frame", receiver.split(":", 1)[1], kind, expr)
            return "other"
        if receiver == "payload" or receiver.startswith("payload["):
            if meth in _MUTATORS or meth not in _FRAME_READS | {"index", "count", "get"}:
                if meth in _MUTATORS or meth in ("fill", "sort", "reverse"):
                    self._emit("payload", receiver, "write", expr)
            return "other"
        if receiver == "self.sim":
            self._emit("unknown", "", f"call:sim.{meth}", expr)
            return "other"
        if receiver.startswith("self."):
            # config/layout lookups and other modelled-neutral chains.
            return "other"
        if receiver == "obs":
            self._emit("obs", "", "note", expr)
            return "other"
        # A call on an untracked local: no modelled protocol state is
        # reachable through it (locals hold copies/scalars); benign.
        return "other"

    @staticmethod
    def _scheme_is_none(expr: ast.Call) -> bool:
        for kw in expr.keywords:
            if (
                kw.arg == "scheme"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value == "none"
            ):
                return True
        if len(expr.args) > 3:
            arg = expr.args[3]
            return isinstance(arg, ast.Constant) and arg.value == "none"
        return False

    def _expand_self_call(
        self,
        meth: str,
        expr: ast.Call,
        args: list[str],
        kwargs: dict[str, str],
    ) -> None:
        methods = self.analyzer.facts.effective_methods(self.root_class)
        found = methods.get(meth)
        if found is None:
            self._emit("unknown", "", f"call:self.{meth}", expr)
            return
        cls, info = found
        params = [a.arg for a in info.fn.args.args if a.arg != "self"]
        bindings: dict[str, str] = {}
        for name, value in zip(params, args):
            bindings[name] = _bindable(value)
        for name, value in kwargs.items():
            if name in params:
                bindings[name] = _bindable(value)
        for effect in self.analyzer.method_effects(
            self.root_class, meth, tuple(sorted(bindings.items()))
        ):
            self.collector.add(effect)
        del cls


class EffectAnalyzer:
    """Project-wide memoised effect analysis (one per ProjectFacts)."""

    def __init__(self, facts: facts_mod.ProjectFacts) -> None:
        self.facts = facts
        self._memo: dict[
            tuple[str, str, tuple[tuple[str, str], ...]], frozenset[Effect]
        ] = {}
        self._stack: set[tuple[str, str, tuple[tuple[str, str], ...]]] = set()

    def method_effects(
        self,
        root_class: str,
        method: str,
        bindings: tuple[tuple[str, str], ...],
    ) -> frozenset[Effect]:
        """Effects of ``method`` resolved against ``root_class``'s MRO,
        with parameters bound to the given abstract values."""
        key = (root_class, method, bindings)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._stack:
            return frozenset()  # recursion: the outer frame collects
        found = self.facts.effective_methods(root_class).get(method)
        if found is None:
            return frozenset(
                [Effect("unknown", "", f"call:self.{method}")]
            )
        cls, info = found
        self._stack.add(key)
        try:
            collector = _Collector()
            evaluator = _MethodEvaluator(self, root_class, cls.path, collector)
            env = {name: "other" for name in (
                a.arg for a in info.fn.args.args if a.arg != "self"
            )}
            env.update(dict(bindings))
            cfg = build_cfg(info.fn)
            run_forward(cfg, _EnvAnalysis(evaluator, env))
            result = frozenset(collector.effects.values())
        finally:
            self._stack.discard(key)
        self._memo[key] = result
        return result


# ----------------------------------------------------------------------
# certification

#: Stores whose effects must be keyed by the payload's page for the
#: handler to be page-attributable.
_KEYED_STORES = ("entry", "pool", "frame", "disk")


def _is_keyed_store(store: str) -> bool:
    return store in _KEYED_STORES or store.startswith("attr:")


def certify_class(
    facts: facts_mod.ProjectFacts,
    class_name: str,
    analyzer: EffectAnalyzer | None = None,
) -> ClassFootprints:
    """Certify every registered op of ``class_name`` against its
    declared footprint extractor.

    Per op, the handler's effects are inferred and each page-keyed
    effect's key is compared to the declared extractor's projection.
    An op is *attributed* when the extractor exists, is certifiable,
    and covers every keyed use (wildcard eviction cascades stay local
    to the target node, so they do not break attribution — they only
    block same-node pairing, which the commutativity matrix handles
    per effect).  Anything else is demoted, with a finding explaining
    why."""
    analyzer = analyzer or EffectAnalyzer(facts)
    cls = facts.classes[class_name]
    declared_map = extractor_declarations(facts, class_name)
    algorithm = class_attribute(facts, class_name, "name") or class_name
    out = ClassFootprints(class_name, algorithm, cls.path, cls.line)
    methods = facts.effective_methods(class_name)

    for op, (handler, reg_cls, reg_line) in sorted(
        facts.effective_registrations(class_name).items()
    ):
        found = methods.get(handler)
        if found is None:
            fp = OpFootprint(op, handler, reg_cls.name, None, (), False, False, False)
            fp.problems.append((
                "footprint-unattributable",
                f"op {op!r} registers unknown handler {handler!r}",
                reg_cls.path, reg_line,
            ))
            out.ops[op] = fp
            continue
        handler_cls, info = found
        params = [a.arg for a in info.fn.args.args if a.arg != "self"]
        bindings: list[tuple[str, str]] = []
        if len(params) >= 1:
            bindings.append((params[0], "origin"))
        if len(params) >= 2:
            bindings.append((params[1], "payload"))
        effects = analyzer.method_effects(
            class_name, handler, tuple(sorted(bindings))
        )
        declared = declared_map.get(op, None)
        has_declaration = op in declared_map

        keyed = [e for e in effects if _is_keyed_store(e.store)]
        page_keys = sorted(
            {e.key for e in keyed if e.key not in ("*", "other")}
        )
        where = f"{handler_cls.name}.{handler}"
        problems: list[tuple[str, str, str, int]] = []

        for e in effects:
            if e.store == "unknown":
                problems.append((
                    "footprint-unattributable",
                    f"{where} (op {op!r}) has an unanalyzable effect "
                    f"({e.kind}); its deliveries cannot be page-attributed",
                    e.path or handler_cls.path, e.line,
                ))
            elif e.store == "payload" and e.kind == "write":
                problems.append((
                    "footprint-unattributable",
                    f"{where} (op {op!r}) mutates the delivered payload "
                    f"({e.key}) — a multicast payload is one shared object "
                    "across targets, so this is a cross-node channel",
                    e.path or handler_cls.path, e.line,
                ))
            elif _is_keyed_store(e.store) and e.key == "other":
                problems.append((
                    "footprint-unattributable",
                    f"{where} (op {op!r}) touches {e.describe()} keyed by "
                    "something that is not a payload projection",
                    e.path or handler_cls.path, e.line,
                ))
        awaits = any(
            e.store == "send" and e.kind == "await" for e in effects
        )
        emits = any(
            e.store == "send" and e.kind == "emit" for e in effects
        )
        if awaits:
            problems.append((
                "footprint-unattributable",
                f"{where} (op {op!r}) awaits a remote send while serving; "
                "its delivery cannot be treated as one atomic footprint",
                handler_cls.path, info.fn.lineno,
            ))

        if page_keys and not has_declaration:
            problems.append((
                "footprint-under-declared",
                f"{where} (op {op!r}) keys state by {', '.join(page_keys)} "
                "but no footprint extractor is registered for the op",
                handler_cls.path, info.fn.lineno,
            ))
        elif page_keys and declared is None:
            problems.append((
                "footprint-under-declared",
                f"{where} (op {op!r}) has a footprint extractor the "
                "analysis cannot certify (not an identity or constant "
                "index projection)",
                handler_cls.path, info.fn.lineno,
            ))
        elif declared is not None:
            wrong = [k for k in page_keys if k != declared]
            if wrong:
                problems.append((
                    "footprint-under-declared",
                    f"{where} (op {op!r}) declares footprint {declared} "
                    f"but keys state by {', '.join(wrong)}",
                    handler_cls.path, info.fn.lineno,
                ))

        attributed = (
            not problems
            and has_declaration
            and declared is not None
            and all(k == declared for k in page_keys)
        )
        fp = OpFootprint(
            op=op,
            handler=handler,
            handler_class=handler_cls.name,
            declared=declared if has_declaration else None,
            used=tuple(page_keys),
            attributed=attributed,
            emits=emits,
            awaits=awaits,
            effects=effects,
        )
        fp.problems = problems
        out.ops[op] = fp
    return out
