"""A/B benchmark: hand-coded vs certified independence relation.

Runs the exhaustive explore-smoke sweeps twice — once pruning with the
hand-written :func:`repro.analysis.explore.independent`, once with the
statically proven matrix (:func:`certified_relation`) — and records both
sides in machine-readable form (``BENCH_explore.json``, committed).  CI
gates on two properties:

- **soundness / no regression**: per sweep, the certified relation must
  visit *no more* schedules than the hand-coded one, with bit-identical
  verdicts (statuses, violations, and the set of distinct final-state
  fingerprints, compared by content hash);
- **stability**: the committed baseline must match exactly — DFS is
  deterministic, so any drift in schedule counts or fingerprints means
  the explorer's semantics changed and the baseline needs a reviewed
  update.

On the token ring the two relations visit *equal* schedule counts: the
matrix's extra same-node different-page commutations can never tie,
because distinct frames serialise on the medium and same-destination
arrivals preserve send order.  The measured refinement is therefore
reported at the relation level (``matrix`` section: proven same-node
pairs per algorithm, vs zero for the hand-coded relation) — it becomes
a state-space reduction on any transport where same-node ties exist.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from repro.analysis import explore as ex
from repro.analysis.static.commute import build_matrix

__all__ = ["SWEEPS", "run_bench", "check_bench", "save_bench", "load_bench"]


@dataclass(frozen=True)
class Sweep:
    algorithm: str
    nodes: int
    pages: int
    workload: str
    hint_period: int = 0
    max_schedules: int = 50_000

    @property
    def key(self) -> str:
        tail = f"+hint{self.hint_period}" if self.hint_period else ""
        return (
            f"{self.algorithm}-n{self.nodes}-p{self.pages}"
            f"-{self.workload}{tail}"
        )

    def scenario(self) -> ex.Scenario:
        return ex.Scenario(
            algorithm=self.algorithm,
            nodes=self.nodes,
            pages=self.pages,
            workload=self.workload,
            hint_period=self.hint_period,
        )


#: The exhaustive CI sweeps (every one completes without truncation —
#: a truncated sweep proves nothing).  The set mirrors the explore-smoke
#: job: all four managers on the minimal tie-rich configs, plus
#: multi-page and hint-broadcast shapes where fan-out deliveries tie.
SWEEPS: tuple[Sweep, ...] = (
    Sweep("centralized", 2, 1, "rw"),
    Sweep("fixed", 2, 1, "rw"),
    Sweep("dynamic", 2, 1, "rw"),
    Sweep("broadcast", 2, 1, "rw"),
    Sweep("centralized", 3, 2, "rw"),
    Sweep("fixed", 3, 2, "rw"),
    Sweep("centralized", 3, 1, "mixed"),
    Sweep("fixed", 3, 1, "chown"),
    Sweep("dynamic", 3, 1, "chown", hint_period=1),
)


def _fingerprint_hash(fingerprints: set[str]) -> str:
    digest = hashlib.sha256()
    for fp in sorted(fingerprints):
        digest.update(fp.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _side(result: ex.ExplorationResult, wall: float) -> dict[str, Any]:
    return {
        "relation": result.relation,
        "schedules": result.schedules,
        "truncated": result.truncated,
        "statuses": dict(sorted(result.statuses.items())),
        "states": len(result.fingerprints),
        "fingerprint_sha256": _fingerprint_hash(result.fingerprints),
        "violations": [
            {
                "status": ce.status,
                "rule": ce.rule,
                "choices": list(ce.choices),
                "drops": list(ce.drops),
            }
            for ce in result.violations
        ],
        "wall_s": round(wall, 3),
    }


def run_bench(sweeps: tuple[Sweep, ...] = SWEEPS) -> dict[str, Any]:
    """Run every sweep under both relations; returns the bench dict."""
    matrix = build_matrix()
    out: dict[str, Any] = {
        "version": 1,
        "generator": "repro.analysis.explorebench",
        "matrix": {
            name: {
                "fanout_safe": entry["fanout_safe"],
                "same_node_commuting_pairs": len(entry["same_node_commutes"]),
            }
            for name, entry in sorted(matrix["algorithms"].items())
        },
        "sweeps": {},
    }
    for sweep in sweeps:
        scenario = sweep.scenario()
        t0 = perf_counter()
        hand = ex.explore_dfs(scenario, max_schedules=sweep.max_schedules)
        t1 = perf_counter()
        cert = ex.explore_dfs(
            scenario,
            max_schedules=sweep.max_schedules,
            relation=ex.certified_relation(sweep.algorithm, matrix),
        )
        t2 = perf_counter()
        out["sweeps"][sweep.key] = {
            "scenario": scenario.to_dict(),
            "handcoded": _side(hand, t1 - t0),
            "certified": _side(cert, t2 - t1),
            "reduction": hand.schedules - cert.schedules,
        }
    return out


#: Per-side keys that must be identical between relations and between a
#: run and the committed baseline (wall time is excluded: it is real).
_VERDICT_KEYS = ("statuses", "states", "fingerprint_sha256", "violations")


def check_bench(bench: dict[str, Any]) -> list[str]:
    """Internal consistency: certified ≤ hand-coded, identical verdicts,
    nothing truncated.  Returns human-readable errors (empty = pass)."""
    errors: list[str] = []
    for key, sweep in sorted(bench.get("sweeps", {}).items()):
        hand, cert = sweep["handcoded"], sweep["certified"]
        if hand["truncated"] or cert["truncated"]:
            errors.append(f"{key}: truncated sweep proves nothing")
        if cert["schedules"] > hand["schedules"]:
            errors.append(
                f"{key}: certified relation explored MORE schedules "
                f"({cert['schedules']} > {hand['schedules']}) — the matrix "
                "demoted an op the sweep relies on"
            )
        for field in _VERDICT_KEYS:
            if hand[field] != cert[field]:
                errors.append(
                    f"{key}: verdict mismatch on {field}: "
                    f"handcoded={hand[field]!r} certified={cert[field]!r}"
                )
    return errors


def compare_bench(
    current: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Drift against the committed baseline (exact: DFS is a pure
    function of the scenario)."""
    errors: list[str] = []
    cur_sweeps = current.get("sweeps", {})
    base_sweeps = baseline.get("sweeps", {})
    for key in sorted(set(cur_sweeps) | set(base_sweeps)):
        if key not in cur_sweeps:
            errors.append(f"{key}: in baseline but not in this run")
            continue
        if key not in base_sweeps:
            errors.append(f"{key}: new sweep missing from committed baseline")
            continue
        for side in ("handcoded", "certified"):
            cur, base = cur_sweeps[key][side], base_sweeps[key][side]
            for field in ("schedules",) + _VERDICT_KEYS:
                if cur[field] != base[field]:
                    errors.append(
                        f"{key}/{side}: {field} drifted from baseline: "
                        f"{base[field]!r} -> {cur[field]!r}"
                    )
    if current.get("matrix") != baseline.get("matrix"):
        errors.append(
            "matrix summary drifted from baseline: "
            f"{baseline.get('matrix')!r} -> {current.get('matrix')!r}"
        )
    return errors


def save_bench(bench: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
