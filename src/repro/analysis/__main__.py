"""Command-line entry points for the dynamic checkers.

::

    # Post-mortem: check a recorded protocol trace offline.
    python -m repro.analysis replay trace.jsonl

    # Online: run a benchmark under the full checker (oracle + race
    # detector), optionally recording the protocol trace for replay.
    python -m repro.analysis run --app jacobi --algorithm dynamic \
        --nodes 4 --trace trace.jsonl

Exit status is non-zero when any invariant violation (or, for ``run``,
an unexpected benchmark result) is found, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.analysis.replay import SVM_CATEGORIES, replay_file, summarize
from repro.config import ClusterConfig
from repro.metrics.collect import VIOLATION_PREFIX


def _build_app(name: str, nprocs: int) -> Any:
    # Sizes are scaled down from the paper's: the checker multiplies the
    # per-access work, and a violation in a small run is a violation.
    if name == "dotprod":
        from repro.apps.dotprod import DotProductApp

        return DotProductApp(nprocs, n=4096)
    if name == "jacobi":
        from repro.apps.jacobi import JacobiApp

        return JacobiApp(nprocs, n=48, iters=3)
    if name == "tsp":
        from repro.apps.tsp import TspApp

        return TspApp(nprocs, ncities=8)
    raise SystemExit(f"unknown app {name!r} (expected dotprod, jacobi or tsp)")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.ivy import Ivy
    from repro.sim.trace import TraceRecorder

    config = ClusterConfig(nodes=args.nodes, checker=True).with_svm(
        algorithm=args.algorithm
    )
    trace = TraceRecorder(categories=set(SVM_CATEGORIES))
    ivy = Ivy(config, trace=trace)
    app = _build_app(args.app, args.nodes)
    result = ivy.run(app.main)
    app.check(result)

    counters = ivy.cluster.total_counters()
    violations = counters.violations()
    oracle = ivy.cluster.oracle
    races = ivy.races.races if ivy.races is not None else []
    print(
        f"{args.app} on {args.nodes} nodes ({args.algorithm}): result ok, "
        f"{oracle.checks_run if oracle else 0} oracle checks, "
        f"{len(trace.events)} protocol events"
    )
    for rule, count in sorted(violations.items()):
        print(f"  {VIOLATION_PREFIX}{rule}: {count}")
    for race in races:
        print(race.format())
    if args.trace:
        count = trace.save(args.trace)
        print(f"saved {count} events to {args.trace}")
    # Benign application-level races (TSP's optimistic best-bound read)
    # are findings about the *program*; only coherence violations mean
    # the *memory* broke.
    coherence = {k: v for k, v in violations.items() if k != "race"}
    return 1 if coherence else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        machine = replay_file(args.trace)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.trace}")
    print(summarize(machine))
    return 1 if machine.violations else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="dynamic correctness checkers for the SVM simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a benchmark under the checkers")
    run.add_argument("--app", default="jacobi", help="dotprod | jacobi | tsp")
    run.add_argument(
        "--algorithm", default="dynamic",
        help="centralized | fixed | dynamic | broadcast",
    )
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--trace", default="", help="save the protocol trace (JSONL)")
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser("replay", help="check a recorded trace offline")
    replay.add_argument("trace", help="JSONL file written by TraceRecorder.save")
    replay.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
