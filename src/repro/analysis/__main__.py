"""Command-line entry points for the dynamic checkers.

::

    # Post-mortem: check a recorded protocol trace offline.
    python -m repro.analysis replay trace.jsonl

    # Online: run a benchmark under the full checker (oracle + race
    # detector), optionally recording the protocol trace for replay.
    python -m repro.analysis run --app jacobi --algorithm dynamic \
        --nodes 4 --trace trace.jsonl

    # Model-check a small configuration across many schedules.
    python -m repro.analysis explore --algorithm dynamic --nodes 2 \
        --pages 1 --workload rw --strategy dfs

    # A/B the hand-coded vs statically certified independence relation
    # over the exhaustive CI sweeps; gate on the committed baseline.
    python -m repro.analysis explore-bench --check BENCH_explore.json

    # Shrink a violating schedule, then re-execute it.
    python -m repro.analysis minimize counterexamples.jsonl
    python -m repro.analysis replay-schedule counterexamples.jsonl

Exit status is non-zero when any invariant violation (or, for ``run``,
an unexpected benchmark result) is found, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any

from repro.analysis.replay import SVM_CATEGORIES, replay_file, summarize
from repro.config import ClusterConfig
from repro.metrics.collect import VIOLATION_PREFIX


def _build_app(name: str, nprocs: int) -> Any:
    # Sizes are scaled down from the paper's: the checker multiplies the
    # per-access work, and a violation in a small run is a violation.
    if name == "dotprod":
        from repro.apps.dotprod import DotProductApp

        return DotProductApp(nprocs, n=4096)
    if name == "jacobi":
        from repro.apps.jacobi import JacobiApp

        return JacobiApp(nprocs, n=48, iters=3)
    if name == "tsp":
        from repro.apps.tsp import TspApp

        return TspApp(nprocs, ncities=8)
    raise SystemExit(f"unknown app {name!r} (expected dotprod, jacobi or tsp)")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api.ivy import Ivy
    from repro.sim.trace import TraceRecorder

    config = ClusterConfig(nodes=args.nodes, checker=True).with_svm(
        algorithm=args.algorithm
    )
    trace = TraceRecorder(categories=set(SVM_CATEGORIES))
    ivy = Ivy(config, trace=trace)
    app = _build_app(args.app, args.nodes)
    result = ivy.run(app.main)
    app.check(result)

    counters = ivy.cluster.total_counters()
    violations = counters.violations()
    oracle = ivy.cluster.oracle
    races = ivy.races.races if ivy.races is not None else []
    print(
        f"{args.app} on {args.nodes} nodes ({args.algorithm}): result ok, "
        f"{oracle.checks_run if oracle else 0} oracle checks, "
        f"{len(trace.events)} protocol events"
    )
    for rule, count in sorted(violations.items()):
        print(f"  {VIOLATION_PREFIX}{rule}: {count}")
    for race in races:
        print(race.format())
    if args.trace:
        count = trace.save(args.trace)
        print(f"saved {count} events to {args.trace}")
    # Benign application-level races (TSP's optimistic best-bound read)
    # are findings about the *program*; only coherence violations mean
    # the *memory* broke.
    coherence = {k: v for k, v in violations.items() if k != "race"}
    return 1 if coherence else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        machine = replay_file(args.trace)
    except FileNotFoundError:
        raise SystemExit(f"no such trace file: {args.trace}")
    print(summarize(machine))
    return 1 if machine.violations else 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.analysis import explore as ex

    scenario = ex.Scenario(
        algorithm=args.algorithm,
        nodes=args.nodes,
        pages=args.pages,
        workload=args.workload,
        seed=args.seed,
        mutation=args.mutation or None,
        hint_period=args.hint_period,
        fabric=args.fabric,
    )
    relation = None
    if args.relation == "certified":
        relation = ex.certified_relation(
            args.algorithm, args.matrix or None
        )
    elif args.relation != "handcoded":
        raise SystemExit(f"unknown relation {args.relation!r}")
    if args.strategy == "dfs":
        result = ex.explore_dfs(
            scenario,
            por=not args.no_por,
            max_schedules=args.max_schedules,
            max_events=args.max_events,
            relation=relation,
        )
    elif args.strategy == "pct":
        result = ex.explore_pct(
            scenario, samples=args.samples, max_events=args.max_events
        )
    elif args.strategy == "delay":
        result = ex.explore_delay(
            scenario,
            pairs=args.pairs,
            max_schedules=args.max_schedules,
            max_events=args.max_events,
        )
    else:
        raise SystemExit(f"unknown strategy {args.strategy!r}")

    statuses = ", ".join(
        f"{status}={count}" for status, count in sorted(result.statuses.items())
    )
    print(
        f"{scenario.workload} on {scenario.nodes} nodes / {scenario.pages} "
        f"pages ({scenario.algorithm}, {result.strategy}, "
        f"{result.relation} relation): "
        f"{result.schedules} schedules [{statuses}]"
        f"{' (truncated)' if result.truncated else ''}, "
        f"{len(result.fingerprints)} distinct final states"
    )
    if result.extractor_errors:
        per_op = ", ".join(
            f"{op}={count}"
            for op, count in sorted(result.extractor_errors.items())
        )
        total = sum(result.extractor_errors.values())
        print(
            f"  explore.extractor_error={total} ({per_op}): footprint "
            f"extractors failed; affected deliveries fell back to p? "
            f"(sound, but POR is weakened)"
        )
    violations = result.violations
    if violations and args.minimize:
        violations = [
            ex.minimize_schedule(scenario, ce.choices, ce.drops)
            for ce in violations[: args.minimize]
        ]
    for ce in violations[:10]:
        print(
            f"  {ce.status} ({ce.rule}): choices={list(ce.choices)} "
            f"drops={list(ce.drops)}"
        )
    if args.out:
        count = ex.save_counterexamples(
            args.out, scenario, violations, relation=result.relation
        )
        print(f"saved {count} schedule(s) to {args.out}")
    return 1 if result.violations else 0


def _cmd_explore_bench(args: argparse.Namespace) -> int:
    from repro.analysis import explorebench as eb

    bench = eb.run_bench()
    for key, sweep in sorted(bench["sweeps"].items()):
        hand, cert = sweep["handcoded"], sweep["certified"]
        print(
            f"{key}: handcoded {hand['schedules']} schedules / "
            f"certified {cert['schedules']} "
            f"({hand['states']} distinct final states)"
        )
    errors = eb.check_bench(bench)
    if args.check:
        try:
            baseline = eb.load_bench(args.check)
        except FileNotFoundError:
            raise SystemExit(f"no such baseline: {args.check}")
        errors += eb.compare_bench(bench, baseline)
    for error in errors:
        print(f"FAIL {error}")
    if args.out:
        eb.save_bench(bench, args.out)
        print(f"saved bench results to {args.out}")
    if not errors:
        verdict = "identical verdicts, certified <= handcoded everywhere"
        if args.check:
            verdict += ", matches committed baseline"
        print(f"explore-bench ok: {verdict}")
    return 1 if errors else 0


def _cmd_minimize(args: argparse.Namespace) -> int:
    from repro.analysis import explore as ex

    try:
        scenario, schedules = ex.load_artifact(args.artifact)
    except FileNotFoundError:
        raise SystemExit(f"no such artifact: {args.artifact}")
    minimized = []
    for ce in schedules:
        small = ex.minimize_schedule(
            scenario, ce.choices, ce.drops, max_events=args.max_events
        )
        minimized.append(small)
        print(
            f"{ce.rule}: {len(ce.choices)} choice(s) + {len(ce.drops)} "
            f"drop(s) -> {len(small.choices)} + {len(small.drops)}"
        )
    out = args.out or args.artifact
    count = ex.save_counterexamples(out, scenario, minimized)
    print(f"saved {count} minimized schedule(s) to {out}")
    return 0


def _cmd_replay_schedule(args: argparse.Namespace) -> int:
    from repro.analysis import explore as ex

    try:
        pairs = ex.replay_artifact(args.artifact, max_events=args.max_events)
    except FileNotFoundError:
        raise SystemExit(f"no such artifact: {args.artifact}")
    failures = 0
    for recorded, run in pairs:
        reproduced = (run.status, run.rule) == (recorded.status, recorded.rule)
        failures += 0 if reproduced else 1
        verdict = "reproduced" if reproduced else "DID NOT REPRODUCE"
        print(
            f"choices={list(recorded.choices)} drops={list(recorded.drops)}: "
            f"recorded {recorded.status} ({recorded.rule}), "
            f"replay {run.status} ({run.rule}) -> {verdict}"
        )
    if not pairs:
        print("artifact contains no schedules")
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="dynamic correctness checkers for the SVM simulation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a benchmark under the checkers")
    run.add_argument("--app", default="jacobi", help="dotprod | jacobi | tsp")
    run.add_argument(
        "--algorithm", default="dynamic",
        help="centralized | fixed | dynamic | broadcast",
    )
    run.add_argument("--nodes", type=int, default=4)
    run.add_argument("--trace", default="", help="save the protocol trace (JSONL)")
    run.set_defaults(func=_cmd_run)

    replay = sub.add_parser("replay", help="check a recorded trace offline")
    replay.add_argument("trace", help="JSONL file written by TraceRecorder.save")
    replay.set_defaults(func=_cmd_replay)

    explore = sub.add_parser(
        "explore", help="model-check schedules of a small configuration"
    )
    explore.add_argument(
        "--algorithm", default="dynamic",
        help="centralized | fixed | dynamic | broadcast",
    )
    explore.add_argument("--nodes", type=int, default=2)
    explore.add_argument("--pages", type=int, default=1)
    explore.add_argument(
        "--workload", default="rw", help="rw | chown | mixed | mutate-upgrade"
    )
    explore.add_argument("--strategy", default="dfs", help="dfs | pct | delay")
    explore.add_argument("--seed", type=int, default=1988)
    explore.add_argument(
        "--mutation", default="",
        help="seeded page-table corruption (e.g. ghost-copyset)",
    )
    explore.add_argument(
        "--hint-period", type=int, default=0,
        help="dynamic manager hint-broadcast period (fan-out ties)",
    )
    explore.add_argument(
        "--fabric", default="ring",
        help="network backend to explore on: ring | switched",
    )
    explore.add_argument("--max-schedules", type=int, default=10_000)
    explore.add_argument("--max-events", type=int, default=50_000)
    explore.add_argument("--samples", type=int, default=50, help="pct samples")
    explore.add_argument(
        "--pairs", action="store_true", help="delay: also drop frame pairs"
    )
    explore.add_argument(
        "--no-por", action="store_true",
        help="dfs: disable the sleep-set partial-order reduction",
    )
    explore.add_argument(
        "--relation", default="handcoded",
        help="dfs independence relation: handcoded | certified "
        "(statically proven commutativity matrix)",
    )
    explore.add_argument(
        "--matrix", default="",
        help="certified: load the matrix from this JSON file instead of "
        "re-running the static analysis",
    )
    explore.add_argument(
        "--minimize", type=int, default=0, metavar="N",
        help="delta-debug the first N violating schedules before reporting",
    )
    explore.add_argument(
        "--out", default="", help="save violating schedules (JSONL artifact)"
    )
    explore.set_defaults(func=_cmd_explore)

    bench = sub.add_parser(
        "explore-bench",
        help="A/B the hand-coded vs certified relation over the CI sweeps",
    )
    bench.add_argument(
        "--out", default="", help="write the bench results (JSON)"
    )
    bench.add_argument(
        "--check", default="", metavar="BASELINE",
        help="compare against a committed BENCH_explore.json and fail on "
        "any soundness violation or drift",
    )
    bench.set_defaults(func=_cmd_explore_bench)

    minimize = sub.add_parser(
        "minimize", help="shrink every schedule in a counterexample artifact"
    )
    minimize.add_argument("artifact", help="JSONL artifact from explore --out")
    minimize.add_argument("--out", default="", help="output path (default: in place)")
    minimize.add_argument("--max-events", type=int, default=50_000)
    minimize.set_defaults(func=_cmd_minimize)

    replay_schedule = sub.add_parser(
        "replay-schedule", help="re-execute schedules from an artifact"
    )
    replay_schedule.add_argument("artifact", help="JSONL artifact from explore --out")
    replay_schedule.add_argument("--max-events", type=int, default=50_000)
    replay_schedule.set_defaults(func=_cmd_replay_schedule)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
