"""The coherence oracle: an online shadow of the SVM protocol.

Two layers, sharing one event vocabulary (the ``svm.*`` trace
categories listed in :mod:`repro.sim.trace`):

:class:`ShadowMachine`
    A pure event-driven state machine that mirrors what a *correct*
    protocol execution must look like: who owns each page, which nodes
    were granted read copies, which invalidations are legal, and how
    invalidation epochs may move.  Because it needs nothing but the
    event stream, it is also the offline replay checker's core
    (`repro.analysis.replay`).

:class:`CoherenceOracle`
    The online checker attached to a live :class:`~repro.api.cluster.
    Cluster` when ``ClusterConfig.checker`` is set.  On every protocol
    transition it feeds the shadow machine *and* cross-examines the
    actual per-node page tables and page frames: single-writer/
    multiple-reader (a WRITE entry on one node implies NIL everywhere
    else), owner uniqueness, copy-set coverage of every reader, manager
    owner-table agreement, probable-owner chain termination, and data
    coherence (a served read copy must hold the owner's bytes).

Checks that would misfire on legal in-flight states (exactly-one-owner,
copy-set coverage, manager tables, probOwner chains) are gated on the
page having no fault in flight; safety checks (at-most-one-owner,
SWMR, epoch monotonicity, invalidation targeting) run on every event.

The oracle is pure observation — it never yields simulation effects —
so an enabled checker cannot change simulated times or event counts.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.analysis.violation import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.cluster import Cluster

__all__ = ["CoherenceOracle", "ShadowMachine", "PageShadow"]

#: Protocol events that end a fault the shadow machine counts as pending.
_COMPLETIONS = ("svm.read_fault", "svm.write_fault", "svm.write_upgrade", "svm.chown")

#: How many per-page events a violation report carries.
HISTORY_WINDOW = 32


class PageShadow:
    """The shadow machine's view of one shared page."""

    __slots__ = ("owner", "in_transit_to", "copyset", "access", "epochs", "pending")

    def __init__(self, default_owner: int) -> None:
        #: Current owner, or None while ownership is in transit.
        self.owner: int | None = default_owner
        #: Destination of an in-transit ownership grant.
        self.in_transit_to: int | None = None
        #: Nodes granted read copies and not yet invalidated.  A node
        #: that silently dropped its copy under eviction pressure stays
        #: here — invalidating it later is legal (and a no-op there).
        self.copyset: set[int] = set()
        #: Shadow protection per node (only nodes seen in events).
        self.access: dict[int, str] = {}
        #: Highest invalidation epoch seen per node.
        self.epochs: dict[int, int] = {}
        #: Faults in flight for this page.
        self.pending: int = 0


class ShadowMachine:
    """Event-driven shadow of the coherence protocol.

    Feed it normalised protocol events via :meth:`apply`; violations are
    collected in :attr:`violations` (and raised when ``strict``).
    Usable online (driven by the live oracle) and offline (driven by a
    recorded trace stream).
    """

    def __init__(
        self,
        nnodes: int,
        manager_node: int = 0,
        update_policy: bool = False,
        strict: bool = False,
    ) -> None:
        self.nnodes = nnodes
        self.manager_node = manager_node
        self.update_policy = update_policy
        self.strict = strict
        self.pages: dict[int, PageShadow] = {}
        self.violations: list[InvariantViolation] = []
        self.events_seen = 0

    # ------------------------------------------------------------------

    def shadow(self, page: int) -> PageShadow:
        shadow = self.pages.get(page)
        if shadow is None:
            shadow = PageShadow(self.manager_node)
            self.pages[page] = shadow
        return shadow

    def _flag(
        self, rule: str, detail: str, page: int | None, node: int | None, time: int
    ) -> None:
        violation = InvariantViolation(rule, detail, page=page, node=node, time=time)
        self.violations.append(violation)
        if self.strict:
            raise violation

    # ------------------------------------------------------------------

    def apply(self, category: str, time: int, fields: dict[str, Any]) -> None:
        """Advance the shadow state by one protocol event, checking the
        stream-decidable invariants as it goes."""
        self.events_seen += 1
        if category == "cluster.boot":
            self.nnodes = int(fields.get("nodes", self.nnodes))
            self.manager_node = int(fields.get("manager", self.manager_node))
            self.update_policy = fields.get("write_policy") == "update"
            return
        if "page" not in fields:
            return
        page = int(fields["page"])
        shadow = self.shadow(page)
        node = int(fields.get("node", -1))

        if category == "svm.fault_begin":
            shadow.pending += 1
        elif category == "svm.grant":
            self._apply_grant(shadow, time, page, node, fields)
        elif category == "svm.read_fault":
            self._complete(shadow)
            shadow.access[node] = "READ"
            owner = int(fields["owner"])
            if shadow.owner is not None and shadow.owner != owner:
                self._flag(
                    "read-owner-mismatch",
                    f"read fault on node {node} served by {owner} but the "
                    f"shadow owner is {shadow.owner}",
                    page, node, time,
                )
        elif category in ("svm.write_fault", "svm.write_upgrade", "svm.chown"):
            self._complete(shadow)
            shadow.owner = node
            shadow.in_transit_to = None
            shadow.access[node] = "WRITE"
            shadow.copyset.discard(node)
            if not self.update_policy:
                stale = shadow.copyset - {node}
                if stale:
                    self._flag(
                        "stale-copy",
                        f"write completed on node {node} while nodes "
                        f"{sorted(stale)} still hold uninvalidated copies",
                        page, node, time,
                    )
                    shadow.copyset = set()  # do not re-report every event
        elif category == "svm.invalidate":
            targets = set(int(t) for t in fields["targets"])
            rogue = targets - shadow.copyset
            if rogue:
                self._flag(
                    "invalidate-nonholder",
                    f"node {node} invalidated {sorted(rogue)} which were "
                    f"never granted a copy (granted: {sorted(shadow.copyset)})",
                    page, node, time,
                )
        elif category == "svm.inv_recv":
            epoch = int(fields["epoch"])
            last = shadow.epochs.get(node, 0)
            if epoch <= last:
                self._flag(
                    "epoch-regress",
                    f"node {node} invalidation epoch moved {last} -> {epoch}",
                    page, node, time,
                )
            shadow.epochs[node] = max(epoch, last)
            shadow.copyset.discard(node)
            shadow.access[node] = "NIL"
        elif category == "svm.drop":
            shadow.access[node] = "NIL"
        # svm.update_recv: a pushed image applied to a live copy — no
        # shadow transition (membership was established at grant time).

    def _apply_grant(
        self, shadow: PageShadow, time: int, page: int, node: int,
        fields: dict[str, Any],
    ) -> None:
        to = int(fields["to"])
        write = bool(fields["write"])
        if shadow.owner is None:
            self._flag(
                "grant-in-transit",
                f"node {node} granted page to {to} while ownership is "
                f"already in transit to {shadow.in_transit_to}",
                page, node, time,
            )
        elif shadow.owner != node:
            self._flag(
                "grant-nonowner",
                f"node {node} granted page to {to} but the shadow owner "
                f"is {shadow.owner}",
                page, node, time,
            )
        if write:
            shadow.owner = None
            shadow.in_transit_to = to
            # The transferred copy set is authoritative: the grantor's
            # table tracked every read grant, and the hand-over dissolves
            # both the grantor's own copy (invalidate policy) and the
            # grantee's old reader membership.
            inherited = set(int(c) for c in fields.get("copy_set", ()))
            shadow.copyset = inherited - {to}
            if self.update_policy and not fields.get("zero", False):
                shadow.access[node] = "READ"
            else:
                shadow.access[node] = "NIL"
        else:
            shadow.copyset.add(to)
            if shadow.access.get(node) == "WRITE":
                shadow.access[node] = "READ"

    @staticmethod
    def _complete(shadow: PageShadow) -> None:
        shadow.pending = max(0, shadow.pending - 1)


class CoherenceOracle:
    """Online invariant checker for a live cluster.

    Attached by :class:`repro.api.cluster.Cluster` when the config's
    ``checker`` flag is set; every node's protocol then publishes its
    transitions here via ``CoherenceProtocol._note``.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        config = cluster.config
        self.update_policy = config.svm.write_policy == "update"
        self.shadow = ShadowMachine(
            nnodes=config.nodes,
            manager_node=config.svm.manager_node,
            update_policy=self.update_policy,
            strict=False,
        )
        self.histories: dict[int, deque[tuple[int, str, dict[str, Any]]]] = {}
        self.checks_run = 0
        #: Pages any node has ever materialised an entry for.
        self.touched_pages: set[int] = set()
        for node in cluster.nodes:
            node.table.attach_observer(self._on_entry)

    # ------------------------------------------------------------------
    # hooks

    def _on_entry(self, node_id: int, page: int, entry: Any) -> None:
        """Page-table observer: start shadowing a page on first touch."""
        self.touched_pages.add(page)

    def on_event(self, category: str, time: int, fields: dict[str, Any]) -> None:
        """Receive one protocol transition from a node's protocol."""
        page = fields.get("page")
        if page is None:
            return
        history = self.histories.get(page)
        if history is None:
            history = deque(maxlen=HISTORY_WINDOW)
            self.histories[page] = history
        history.append((time, category, dict(fields)))

        self.shadow.apply(category, time, fields)
        if self.shadow.violations:
            self._raise(self.shadow.violations.pop(), page)

        self._check_page(page, time, category, fields)

    # ------------------------------------------------------------------
    # live cross-examination of the real page tables

    def _check_page(
        self, page: int, time: int, category: str, fields: dict[str, Any]
    ) -> None:
        self.checks_run += 1
        nodes = self.cluster.nodes
        shadow = self.shadow.shadow(page)
        entries = {n.node_id: n.table.entry(page) for n in nodes}

        owners = [nid for nid, e in entries.items() if e.is_owner]
        if len(owners) > 1:
            self._violation(
                "owner-unique",
                f"page has {len(owners)} owners: {owners}",
                page, time,
            )
        if not shadow.pending and len(owners) == 0:
            self._violation(
                "owner-missing",
                "page has no owner and no fault in flight",
                page, time,
            )

        # Epoch monotonicity against the live tables.
        for nid, entry in entries.items():
            last = shadow.epochs.get(nid, 0)
            if entry.inv_epoch < last:
                self._violation(
                    "epoch-regress",
                    f"node {nid} invalidation epoch moved {last} -> "
                    f"{entry.inv_epoch}",
                    page, time, node=nid,
                )
            shadow.epochs[nid] = max(last, entry.inv_epoch)

        # SWMR: a writable entry anywhere implies NIL everywhere else.
        if not self.update_policy:
            writers = [
                nid for nid, e in entries.items() if e.access.permits_write()
            ]
            if writers:
                readable = [
                    nid for nid, e in entries.items()
                    if e.access.permits_read() and nid not in writers
                ]
                if len(writers) > 1 or readable:
                    self._violation(
                        "swmr",
                        f"writers {writers} coexist with readable copies "
                        f"at {readable}",
                        page, time,
                    )

        if len(owners) == 1:
            owner_id = owners[0]
            owner_entry = entries[owner_id]
            readers = {
                nid for nid, e in entries.items()
                if nid != owner_id and e.access.permits_read()
            }
            if not readers <= owner_entry.copy_set:
                if not shadow.pending:
                    self._violation(
                        "copyset-cover",
                        f"readers {sorted(readers)} not covered by owner "
                        f"{owner_id}'s copy set "
                        f"{sorted(owner_entry.copy_set)}",
                        page, time, node=owner_id,
                    )

            if not shadow.pending:
                self._check_manager_tables(page, time, owner_id)
                self._check_probowner_chains(page, time, owner_id)

        if category == "svm.read_fault" and not self.update_policy:
            self._check_data_coherence(page, time, fields, entries)

    def _check_manager_tables(self, page: int, time: int, owner_id: int) -> None:
        for node in self.cluster.nodes:
            believed = node.protocol.manager_owner_view(page)
            if believed is not None and believed != owner_id:
                self._violation(
                    "manager-table",
                    f"manager {node.node_id} believes node {believed} owns "
                    f"the page but node {owner_id} does",
                    page, time, node=node.node_id,
                )

    def _check_probowner_chains(self, page: int, time: int, owner_id: int) -> None:
        nodes = self.cluster.nodes
        hop = getattr(nodes[0].protocol, "probable_owner_hop", None)
        if hop is None:
            return
        for start in nodes:
            current = start.node_id
            for _ in range(len(nodes) + 1):
                nxt = nodes[current].protocol.probable_owner_hop(page)
                if nxt is None:
                    break
                current = nxt
            if current != owner_id:
                self._violation(
                    "probowner-chain",
                    f"probOwner chain from node {start.node_id} ends at "
                    f"{current}, not the owner {owner_id}",
                    page, time, node=start.node_id,
                )

    def _check_data_coherence(
        self, page: int, time: int, fields: dict[str, Any], entries: dict[int, Any]
    ) -> None:
        """A completed read fault must have installed the owner's bytes
        (the last write in coherence order lives in the owner's frame)."""
        reader = int(fields["node"])
        owner = int(fields["owner"])
        owner_node = self.cluster.nodes[owner]
        reader_node = self.cluster.nodes[reader]
        if not entries[owner].is_owner:
            return  # ownership moved on; the epoch check already re-faulted
        if page not in owner_node.memory or page not in reader_node.memory:
            return
        golden = owner_node.memory.data(page)
        copy = reader_node.memory.data(page)
        if not (golden == copy).all():
            diff = int((golden != copy).sum())
            self._violation(
                "data-stale",
                f"read copy on node {reader} differs from owner {owner}'s "
                f"frame in {diff} byte(s)",
                page, time, node=reader,
            )

    # ------------------------------------------------------------------
    # quiescence sweep

    def check_quiescent(self) -> None:
        """Full-strength sweep over every touched page; call after the
        simulation has drained (no faults can be in flight)."""
        for page in sorted(self.touched_pages):
            shadow = self.shadow.shadow(page)
            if shadow.pending:
                self._violation(
                    "pending-at-quiescence",
                    f"{shadow.pending} fault(s) never completed",
                    page, time=self.cluster.sim.now,
                )
            self._check_page(page, self.cluster.sim.now, "quiescence", {"page": page})

    # ------------------------------------------------------------------

    def _violation(
        self, rule: str, detail: str, page: int, time: int, node: int | None = None
    ) -> None:
        violation = InvariantViolation(
            rule, detail, page=page, node=node, time=time,
            history=list(self.histories.get(page, ())),
            state={
                n.node_id: n.table.entry(page).snapshot()
                for n in self.cluster.nodes
            },
        )
        self._record(violation, page)
        raise violation

    def _raise(self, violation: InvariantViolation, page: int) -> None:
        violation.history = list(self.histories.get(page, ()))
        violation.state = {
            n.node_id: n.table.entry(page).snapshot() for n in self.cluster.nodes
        }
        self._record(violation, page)
        raise violation

    def _record(self, violation: InvariantViolation, page: int) -> None:
        node = violation.node if violation.node is not None else 0
        counters = self.cluster.nodes[node].counters
        counters.inc(f"violation.{violation.rule}")
