"""Offline replay checking of recorded protocol traces.

A trace captured with ``TraceRecorder`` (categories ``svm.*`` plus
``cluster.boot``) is a complete record of the coherence order — events
are appended in execution order, so replaying them through the
:class:`~repro.analysis.oracle.ShadowMachine` re-runs every
stream-decidable invariant without the cluster: grants only by owners,
invalidations only to granted copies, epoch monotonicity, no write
completing over live copies.  This is the post-mortem half of the
checker: run a workload with tracing on, ship the JSONL file, check it
anywhere (``python -m repro.analysis replay trace.jsonl``).
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.oracle import ShadowMachine
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = ["SVM_CATEGORIES", "replay_events", "replay_file", "summarize"]

#: Categories the offline checker consumes.
SVM_CATEGORIES = frozenset(
    {
        "cluster.boot",
        "svm.fault_begin",
        "svm.read_fault",
        "svm.write_fault",
        "svm.write_upgrade",
        "svm.chown",
        "svm.grant",
        "svm.invalidate",
        "svm.inv_recv",
        "svm.update_recv",
        "svm.drop",
    }
)


def replay_events(
    events: Iterable[TraceEvent], strict: bool = False
) -> ShadowMachine:
    """Drive a shadow machine over ``events`` (emission order expected).

    Cluster parameters are taken from the stream's ``cluster.boot``
    event; a stream without one is checked with defaults (one manager at
    node 0, invalidation policy).  Returns the shadow machine; its
    ``violations`` list holds everything found (``strict`` raises on the
    first instead).
    """
    machine = ShadowMachine(nnodes=1, strict=strict)
    for ev in events:
        if ev.category in SVM_CATEGORIES:
            machine.apply(ev.category, ev.time, ev.fields)
    return machine


def replay_file(path: str, strict: bool = False) -> ShadowMachine:
    """Check one :meth:`repro.sim.trace.TraceRecorder.save` JSONL file."""
    return replay_events(TraceRecorder.load(path).replay(), strict=strict)


def summarize(machine: ShadowMachine) -> str:
    """Human-readable replay verdict."""
    lines = [
        f"replayed {machine.events_seen} events over "
        f"{len(machine.pages)} pages"
    ]
    if not machine.violations:
        lines.append("no invariant violations")
    for violation in machine.violations:
        lines.append(violation.format())
    return "\n".join(lines)
