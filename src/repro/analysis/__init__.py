"""Online correctness checking for the shared virtual memory.

``repro.analysis`` is an opt-in, TSan-style dynamic checker that shadows
the live simulation (enable with ``ClusterConfig.checker = True``):

- :mod:`repro.analysis.oracle` — a coherence oracle that subscribes to
  every protocol transition and asserts Li & Hudak's invariants (single
  writer / multiple readers, one owner per page, copy-set soundness,
  invalidation-epoch monotonicity, probable-owner chain termination,
  and data coherence of served page images);
- :mod:`repro.analysis.racedetect` — a vector-clock happens-before race
  detector over application-level shared-memory accesses and the IVY
  synchronisation primitives;
- :mod:`repro.analysis.replay` — an offline checker that replays a
  recorded :class:`repro.sim.trace.TraceRecorder` stream
  (``python -m repro.analysis replay trace.jsonl``);
- :mod:`repro.analysis.explore` — a schedule explorer / model checker
  that drives small protocol configurations through many same-tick
  interleavings (exhaustive DFS with sleep-set reduction, PCT-style
  random sampling, bounded delay injection), checking each schedule
  with the oracle and delta-debugging violations to minimal replayable
  counterexamples (``python -m repro.analysis explore ...``).

Checking is pure observation: no checker ever yields a simulation
effect, so enabling it cannot change simulated times or event counts.
A violated invariant raises :class:`InvariantViolation` carrying the
recent event history of the offending page.
"""

from repro.analysis.explore import (
    Counterexample,
    ExplorationResult,
    RunResult,
    Scenario,
    explore_delay,
    explore_dfs,
    explore_pct,
    minimize_schedule,
    run_scenario,
)
from repro.analysis.oracle import CoherenceOracle, ShadowMachine
from repro.analysis.racedetect import RaceDetector, RaceReport, TrackedMemory
from repro.analysis.violation import InvariantViolation

__all__ = [
    "CoherenceOracle",
    "Counterexample",
    "ExplorationResult",
    "InvariantViolation",
    "RaceDetector",
    "RaceReport",
    "RunResult",
    "Scenario",
    "ShadowMachine",
    "TrackedMemory",
    "explore_delay",
    "explore_dfs",
    "explore_pct",
    "minimize_schedule",
    "run_scenario",
]
