"""Structured violation reports raised by the coherence oracle."""

from __future__ import annotations

from typing import Any

__all__ = ["InvariantViolation"]


class InvariantViolation(AssertionError):
    """A coherence-protocol invariant was violated.

    Subclassing :class:`AssertionError` keeps the oracle compatible with
    the quiescence checks tests already rely on
    (:meth:`repro.api.cluster.Cluster.check_coherence_invariants`), while
    carrying structured context: the violated rule, the page and node
    involved, and the recent protocol-event history of that page.
    """

    def __init__(
        self,
        rule: str,
        detail: str,
        *,
        page: int | None = None,
        node: int | None = None,
        time: int | None = None,
        history: list[tuple[int, str, dict[str, Any]]] | None = None,
        state: dict[int, dict[str, Any]] | None = None,
    ) -> None:
        self.rule = rule
        self.detail = detail
        self.page = page
        self.node = node
        self.time = time
        #: Most recent ``(time, category, fields)`` protocol events for
        #: the offending page, oldest first.
        self.history = history or []
        #: Per-node page-table-entry snapshots for the offending page.
        self.state = state or {}
        super().__init__(self.format())

    def format(self) -> str:
        where = []
        if self.page is not None:
            where.append(f"page {self.page}")
        if self.node is not None:
            where.append(f"node {self.node}")
        if self.time is not None:
            where.append(f"t={self.time}")
        head = f"[{self.rule}] {self.detail}"
        if where:
            head += f" ({', '.join(where)})"
        lines = [head]
        if self.state:
            lines.append("  entry state:")
            for node_id in sorted(self.state):
                lines.append(f"    node {node_id}: {self.state[node_id]}")
        if self.history:
            lines.append(f"  last {len(self.history)} events on this page:")
            for time, category, fields in self.history:
                lines.append(f"    t={time} {category} {fields}")
        return "\n".join(lines)
