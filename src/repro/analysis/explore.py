"""Systematic schedule exploration: a model checker for the protocols.

The simulator is deterministic, so the only nondeterminism a distributed
schedule has in this model is the *order of events tied at one tick*
(`repro.sim.kernel` docstring).  This module turns that tie-break into a
controlled choice point and drives small protocol configurations (2-4
nodes, 1-3 pages, scripted read/write/chown workloads) through many
interleavings, checking every one of them with the coherence oracle,
the deadlock detector and the final-state invariant sweep.

A *schedule* is a prescription: a list of choice indices consumed one
per choice point, in order.  Index 0 is always the event with the lowest
sequence number — the one an uncontrolled run would fire — so the empty
prescription reproduces the default schedule exactly, and any prefix of
choices extends deterministically with defaults.  That representation
makes schedules trivially replayable and shrinkable: a violating run is
delta-debugged down to the minimal non-default choices that still
trigger the violation, then saved as a JSONL artifact that
``python -m repro.analysis replay-schedule`` re-executes.

Three exploration strategies:

- :func:`explore_dfs` — exhaustive depth-first enumeration of the
  schedule tree, optionally pruned with sleep sets over a conservative
  independence relation (two same-tick message deliveries commute when
  they target different nodes *and* different pages; everything else is
  assumed to conflict).  The reduction is sound for safety properties:
  it only skips an interleaving when an equivalent one — same happens-
  before order between dependent events — is explored.
- :func:`explore_pct` — randomized PCT-style priority sampling: each
  run assigns random priorities to event classes and demotes the top
  class at a few random change points, which probes deep orderings that
  stepwise-random walks rarely reach.
- :func:`explore_delay` — bounded delay injection: deterministically
  drops the k-th ring frame (via :attr:`TokenRing.drop_policy`), forcing
  the transport's retransmission path and the message reorderings that
  come with a 500 ms timeout recovery.

All strategies report results as an :class:`ExplorationResult`; any
violating schedule is captured as a :class:`Counterexample`.
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.analysis.violation import InvariantViolation
from repro.api.cluster import Cluster
from repro.config import MILLISECOND, ClusterConfig
from repro.net.packet import Message, extractor_errors, parse_delivery_label
from repro.net.transport import TransportError
from repro.sim.kernel import DeadlockError, PendingEvent, Scheduler
from repro.sim.process import Effect, Sleep, Task, TaskFailure
from repro.svm.protocol import ProtocolError

__all__ = [
    "Scenario",
    "ChoicePoint",
    "RecordingScheduler",
    "PctScheduler",
    "RunResult",
    "Counterexample",
    "ExplorationResult",
    "run_scenario",
    "explore_dfs",
    "explore_pct",
    "explore_delay",
    "minimize_schedule",
    "save_counterexamples",
    "load_artifact",
    "replay_artifact",
    "WORKLOADS",
    "MUTATIONS",
    "independent",
    "CertifiedIndependence",
    "certified_relation",
]

#: Page size used by all exploration scenarios (the paper's conjectured
#: small page; keeps page-crossing workloads cheap).
PAGE_SIZE = 256

#: Default per-run event budget.  A scripted scenario finishes in a few
#: hundred events; the budget only bounds runaway schedules (a run that
#: exhausts it is reported as status "budget", never silently dropped).
DEFAULT_MAX_EVENTS = 50_000


# ----------------------------------------------------------------------
# scenarios


@dataclass(frozen=True)
class Scenario:
    """One model-checking configuration: topology + scripted workload."""

    algorithm: str = "dynamic"
    nodes: int = 2
    pages: int = 1
    workload: str = "rw"
    seed: int = 1988
    #: Optional fault injection (a key of :data:`MUTATIONS`), applied by
    #: the workload mid-run to prove the explorer catches seeded bugs.
    mutation: str | None = None
    #: Dynamic manager hint-broadcast period (``SvmConfig.
    #: dynamic_broadcast_period``); > 0 makes every Mth ownership
    #: transfer broadcast a hint refresh, whose fan-out deliveries are
    #: the richest source of same-tick ties.
    hint_period: int = 0
    #: Network backend the scenario runs on (``FabricConfig.backend``).
    #: The explorer is medium-agnostic — labels, drop numbering and the
    #: oracle work identically — but the *tie structure* differs: the
    #: switched fabric's concurrent links produce same-tick deliveries
    #: the serialising ring cannot.
    fabric: str = "ring"

    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "nodes": self.nodes,
            "pages": self.pages,
            "workload": self.workload,
            "seed": self.seed,
            "mutation": self.mutation,
            "hint_period": self.hint_period,
            "fabric": self.fabric,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Scenario":
        return cls(
            algorithm=raw["algorithm"],
            nodes=int(raw["nodes"]),
            pages=int(raw["pages"]),
            workload=raw["workload"],
            seed=int(raw.get("seed", 1988)),
            mutation=raw.get("mutation"),
            hint_period=int(raw.get("hint_period", 0)),
            fabric=raw.get("fabric", "ring"),
        )


def _build_cluster(scenario: Scenario) -> Cluster:
    config = ClusterConfig(
        nodes=scenario.nodes, seed=scenario.seed, checker=True
    ).with_svm(
        algorithm=scenario.algorithm,
        page_size=PAGE_SIZE,
        shared_size=PAGE_SIZE * 64,
        dynamic_broadcast_period=scenario.hint_period,
    ).with_fabric(backend=scenario.fabric)
    return Cluster(config)


def _addr(cluster: Cluster, page: int, slot: int) -> int:
    """Word ``slot`` of shared page ``page`` (distinct word per node, so
    scripted workloads race on pages — the protocol's job — while the
    application-level values stay well-defined)."""
    return cluster.config.svm.shared_base + page * PAGE_SIZE + slot * 8


# Each workload factory returns one generator per node; the harness
# spawns them all at t=0 so their interleaving is entirely up to the
# scheduler under test.

WorkloadFactory = Callable[
    [Cluster, Scenario], "list[tuple[str, Generator[Effect, Any, Any]]]"
]


def _workload_rw(cluster: Cluster, scenario: Scenario):
    """Every node writes its own word of every page, then reads its
    right neighbour's word — write faults, read faults, invalidations
    and ownership migration all contended on every page."""

    def body(n: int):
        for page in range(scenario.pages):
            yield from cluster.node(n).mem.write_i64(
                _addr(cluster, page, n), n * 100 + page
            )
        for page in range(scenario.pages):
            yield from cluster.node(n).mem.read_i64(
                _addr(cluster, page, (n + 1) % scenario.nodes)
            )

    return [(f"rw-{n}", body(n)) for n in range(scenario.nodes)]


def _workload_chown(cluster: Cluster, scenario: Scenario):
    """Every node takes data-less ownership of every page, then writes —
    contends the chown fast path against concurrent write faults."""

    def body(n: int):
        for page in range(scenario.pages):
            pid = cluster.layout.page_of(_addr(cluster, page, 0))
            yield from cluster.node(n).protocol.take_ownership(pid)
            yield from cluster.node(n).mem.write_i64(
                _addr(cluster, page, n), n + 1
            )

    return [(f"chown-{n}", body(n)) for n in range(scenario.nodes)]


def _workload_mixed(cluster: Cluster, scenario: Scenario):
    """Node 0 runs the chown script, everyone else the rw script."""
    tasks = _workload_chown(cluster, scenario)[:1]
    tasks.extend(_workload_rw(cluster, scenario)[1:])
    return tasks


def _workload_mutate_upgrade(cluster: Cluster, scenario: Scenario):
    """Node 0 writes a page, pauses long enough for node 1's concurrent
    read to be granted a copy, corrupts its own page-table entry with
    ``scenario.mutation``, then writes again.  Node 1 never takes
    ownership, so node 0's second write always upgrades in place and
    multicasts invalidations from the corrupted copy set — the oracle
    must flag it on *every* schedule.  Requires ``nodes >= 3`` so the
    ghost copy-set member is a live node.
    """
    mutate = MUTATIONS[scenario.mutation] if scenario.mutation else None
    page0 = cluster.layout.page_of(_addr(cluster, 0, 0))

    def writer():
        yield from cluster.node(0).mem.write_i64(_addr(cluster, 0, 0), 1)
        # One remote read fault takes a few ms; 20 ms guarantees the
        # reader's copy is installed before the corrupted upgrade.
        yield Sleep(20 * MILLISECOND)
        if mutate is not None:
            mutate(cluster, page0)
        yield from cluster.node(0).mem.write_i64(_addr(cluster, 0, 0), 2)

    def reader():
        yield from cluster.node(1).mem.read_i64(_addr(cluster, 0, 1))

    return [("mutate-writer", writer()), ("mutate-reader", reader())]


WORKLOADS: dict[str, WorkloadFactory] = {
    "rw": _workload_rw,
    "chown": _workload_chown,
    "mixed": _workload_mixed,
    "mutate-upgrade": _workload_mutate_upgrade,
}

#: Seeded protocol-state corruptions (same faults as the PR 1 oracle
#: mutation tests), keyed by name for the CLI and artifacts.
MUTATIONS: dict[str, Callable[[Cluster, int], None]] = {
    # A ghost copy-set member: the owner will invalidate a node that was
    # never granted a copy (oracle rule "invalidate-nonholder").
    "ghost-copyset": lambda cluster, page: (
        cluster.node(0).table.entry(page).copy_set.add(2)
    ),
    # Drop a real reader from the owner's copy set: a later upgrade
    # skips its invalidation, leaving a stale readable copy (rule
    # "swmr" / "stale-copy" at quiescence).
    "lost-copyset": lambda cluster, page: (
        cluster.node(0).table.entry(page).copy_set.discard(1)
    ),
}


# ----------------------------------------------------------------------
# schedulers


@dataclass(frozen=True)
class ChoicePoint:
    """One consulted tie: the labels offered and the index fired."""

    time: int
    labels: tuple[str | None, ...]
    chosen: int


class RecordingScheduler(Scheduler):
    """Replays a prescribed choice list, then defaults; records a log.

    Choices beyond the prescription are index 0 (the default seq order),
    so any prefix extends deterministically.  A prescribed index that
    exceeds the live batch (possible mid-minimization, when zeroing an
    earlier choice changes how later ticks batch) clamps to the last
    event rather than failing — every choice list stays executable.

    With a ``sleep`` set (the DFS passes one per branch), the default
    pick beyond the prescription skips events whose label is asleep —
    an equivalent interleaving that fires them earlier was already
    explored — and the set evolves online: a sleeper is dropped the
    moment a dependent event fires.  The recorded log stays a plain
    choice list, so any run found this way replays via prescription
    alone, without the sleep set.
    """

    def __init__(
        self,
        prescribed: Sequence[int] = (),
        sleep: Iterable[str] = (),
        relation: Relation | None = None,
    ) -> None:
        self.prescribed = tuple(prescribed)
        self.log: list[ChoicePoint] = []
        self._sleep = set(sleep)
        self._relation = relation if relation is not None else independent

    def _pick(self, now: int, events: Sequence[PendingEvent]) -> int:
        cursor = len(self.log)
        if cursor < len(self.prescribed):
            return min(self.prescribed[cursor], len(events) - 1)
        if self._sleep:
            labels = [e.label for e in events]
            for i, label in enumerate(labels):
                sleeping = (
                    label is not None
                    and label in self._sleep
                    and labels.count(label) == 1
                )
                if not sleeping:
                    return i
            # Every live event is asleep: explored interleavings already
            # cover this state; fire the default to make progress.
        return 0

    def choose(self, now: int, events: Sequence[PendingEvent]) -> int:
        index = self._pick(now, events)
        if self._sleep and len(self.log) >= len(self.prescribed):
            chosen = events[index].label
            self._sleep = {z for z in self._sleep if self._relation(z, chosen)}
        self.log.append(ChoicePoint(now, tuple(e.label for e in events), index))
        return index


def _label_key(label: str | None) -> str:
    """Collapse a label to its event class: message ids are volatile
    (they differ between schedules), so PCT priorities attach to the
    stable ``deliver:n1:p0:req:svm.read:o1`` part."""
    return re.sub(r"\.\d+$", "", label) if label else "?"


class PctScheduler(RecordingScheduler):
    """PCT-style randomized priority scheduler.

    Event classes get random priorities on first sight; every choice
    fires the highest-priority live event.  At each of the ``d - 1``
    change points the currently-top class is demoted below everything,
    which is what lets a run of depth ``n`` hit bugs that need ``d``
    specific ordering inversions with probability >= 1/(n * k^(d-1)).
    The log it records is an ordinary choice list, so a violating sample
    replays through a plain :class:`RecordingScheduler`.
    """

    def __init__(self, rng: random.Random, change_points: Iterable[int] = ()) -> None:
        super().__init__(())
        self.rng = rng
        self.change_points = frozenset(change_points)
        self._prio: dict[str, float] = {}

    def _pick(self, now: int, events: Sequence[PendingEvent]) -> int:
        keys = [_label_key(e.label) for e in events]
        for key in keys:
            if key not in self._prio:
                self._prio[key] = self.rng.random()
        if len(self.log) in self.change_points:
            top = max(self._prio, key=lambda k: self._prio[k])
            self._prio[top] -= 1.0
        return max(range(len(events)), key=lambda i: (self._prio[keys[i]], -i))


# ----------------------------------------------------------------------
# one controlled run


class _DropCounter:
    """Deterministic :attr:`Fabric.drop_policy`: numbers every frame
    delivery attempt and drops the prescribed ones (identically on any
    backend — both fabrics consult the hook once per (msg, target) in
    the same deterministic target order)."""

    def __init__(self, drops: Iterable[int]) -> None:
        self.drops = frozenset(drops)
        self.attempts = 0

    def __call__(self, msg: Message, target: int) -> bool:
        attempt = self.attempts
        self.attempts += 1
        return attempt in self.drops


@dataclass
class RunResult:
    """Outcome of one schedule: classification + enough to replay it."""

    status: str  # "ok" | "violation" | "deadlock" | "error" | "budget"
    rule: str | None
    detail: str
    log: tuple[ChoicePoint, ...]
    fingerprint: str | None
    events: int
    time: int
    #: Ring delivery attempts observed (numbering space for drop lists).
    attempts: int

    @property
    def choices(self) -> tuple[int, ...]:
        return tuple(cp.chosen for cp in self.log)


def _fingerprint(cluster: Cluster) -> str:
    """Canonical final protocol state: per (page, node) access mode,
    ownership, copy set and probOwner hint.  Transient bookkeeping
    (invalidation epochs, transfer counts) is deliberately excluded —
    two schedules that agree on this are coherence-equivalent."""
    pages: set[int] = set()
    for node in cluster.nodes:
        pages.update(node.table.known_entries())
    state = [
        (
            page,
            node.node_id,
            node.table.entry(page).access.name,
            node.table.entry(page).is_owner,
            sorted(node.table.entry(page).copy_set),
            node.table.entry(page).prob_owner,
        )
        for page in sorted(pages)
        for node in cluster.nodes
    ]
    return json.dumps(state, separators=(",", ":"))


def run_scenario(
    scenario: Scenario,
    choices: Sequence[int] = (),
    drops: Sequence[int] = (),
    max_events: int = DEFAULT_MAX_EVENTS,
    scheduler: RecordingScheduler | None = None,
    sleep: Iterable[str] = (),
    relation: Relation | None = None,
) -> RunResult:
    """Execute ``scenario`` once under a controlled schedule.

    ``choices`` prescribes same-tick orderings (defaults after the
    prescription runs out); ``drops`` names frame delivery attempts to
    lose (forcing retransmission); ``sleep`` seeds the scheduler's
    sleep set (DFS partial-order reduction) and ``relation`` the
    independence relation that evolves it.  Every run is checked
    three ways: the online oracle during execution,
    :class:`DeadlockError` on queue drain, and the quiescent sweep
    (oracle + global invariants) after a clean finish.
    """
    cluster = _build_cluster(scenario)
    sched = (
        scheduler
        if scheduler is not None
        else RecordingScheduler(choices, sleep=sleep, relation=relation)
    )
    cluster.sim.scheduler = sched
    dropper = _DropCounter(drops)
    cluster.fabric.drop_policy = dropper

    try:
        factory = WORKLOADS[scenario.workload]
    except KeyError:
        raise ValueError(
            f"unknown workload {scenario.workload!r}; "
            f"have {sorted(WORKLOADS)}"
        ) from None
    tasks: list[Task] = [
        cluster.spawn_system(gen, name) for name, gen in factory(cluster, scenario)
    ]

    status, rule, detail = "ok", None, ""
    try:
        cluster.sim.run(max_events=max_events)
        if not all(task.done for task in tasks):
            status = "budget"
            detail = f"stopped after {max_events} events"
    except InvariantViolation as violation:
        status, rule, detail = "violation", violation.rule, str(violation)
    except TaskFailure as failure:
        cause = failure.__cause__
        if isinstance(cause, InvariantViolation):
            status, rule, detail = "violation", cause.rule, str(cause)
        else:
            status, rule = "error", type(cause).__name__ if cause else "TaskFailure"
            detail = str(failure)
    except DeadlockError as deadlock:
        status, detail = "deadlock", str(deadlock)
    except (ProtocolError, TransportError, AssertionError) as exc:
        status, rule, detail = "error", type(exc).__name__, str(exc)

    if status == "ok":
        try:
            cluster.oracle.check_quiescent()
            cluster.check_coherence_invariants()
        except InvariantViolation as violation:
            status, rule, detail = "violation", violation.rule, str(violation)
        except AssertionError as exc:
            status, rule, detail = "violation", "final-state", str(exc)

    return RunResult(
        status=status,
        rule=rule,
        detail=detail,
        log=tuple(sched.log),
        fingerprint=_fingerprint(cluster) if status == "ok" else None,
        events=cluster.sim.events_executed,
        time=cluster.sim.now,
        attempts=dropper.attempts,
    )


# ----------------------------------------------------------------------
# independence (for partial-order reduction)

#: Fan-out deliveries that commute even for the *same* page: each one
#: only rewrites its target node's page-table entry (access, probOwner)
#: and the origin aggregates replies order-insensitively (counted for
#: invalidation/update, first-and-only for owner location, none for
#: hints).  These are exactly the broadcast frames whose deliveries
#: share one ring arrival tick — the only place same-page deliveries
#: can ever tie, since distinct frames serialise on the medium.
_FANOUT_OPS = frozenset({"svm.inv", "svm.update", "svm.hint", "svm.locate"})


def _delivery_footprint(label: str | None) -> tuple[int, int, str] | None:
    """(target node, page, op) for a page-attributed delivery label,
    else None.  Labels that do not parse — task steps, wakes, retransmit
    timers, deliveries whose payload has no page (``p?``) — get no
    footprint and are treated as conflicting with everything.  Parsing
    goes through :func:`repro.net.packet.parse_delivery_label`, the
    single owner of the label grammar."""
    parsed = parse_delivery_label(label)
    if parsed is None or parsed.page is None:
        return None
    return (parsed.target, parsed.page, parsed.op)


def independent(a: str | None, b: str | None) -> bool:
    """Conservative commutativity between same-tick events.

    Two message deliveries commute when they target different nodes and
    either (a) concern different pages — disjoint node-local state, and
    the manager owner tables that might be shared are keyed per page
    (each algorithm asserts this via ``SCHED_FOOTPRINTS``) — or (b) are
    both fan-out deliveries (:data:`_FANOUT_OPS`) of the same multicast,
    which touch only their own target's entry.  Any label we cannot
    attribute is assumed to conflict, which can only cost extra
    exploration, never miss an interleaving."""
    fa, fb = _delivery_footprint(a), _delivery_footprint(b)
    if fa is None or fb is None or fa[0] == fb[0]:
        return False
    if fa[1] != fb[1]:
        return True
    return fa[2] in _FANOUT_OPS and fb[2] in _FANOUT_OPS


#: An independence relation between same-tick event labels.
Relation = Callable[[str | None, str | None], bool]


class CertifiedIndependence:
    """Independence relation backed by the statically certified
    commutativity matrix (:mod:`repro.analysis.static.commute`).

    Where :func:`independent` trusts the hand-written extractors and
    ``_FANOUT_OPS`` outright, this relation commutes only what the
    effect analysis proved:

    - *different node, different page*: both ops must be certified
      page-attributed (their extractors provably name every page-keyed
      state access);
    - *different node, same page*: both ops must be in the proven
      subset of the declared fan-out set;
    - *same node, different page*: the pair must be in the matrix's
      ``same_node_commutes`` — the strict refinement over the
      hand-coded relation;
    - anything unattributed (including every op the analysis demoted)
      conflicts with everything.
    """

    name = "certified"

    def __init__(self, entry: dict[str, Any]) -> None:
        ops = entry.get("ops", {})
        self.attributed = frozenset(
            op for op, info in ops.items() if info.get("attributed")
        )
        self.fanout_safe = frozenset(entry.get("fanout_safe", ()))
        self.same_node = frozenset(
            (a, b) for a, b in entry.get("same_node_commutes", ())
        )

    def _pair_key(self, a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def __call__(self, a: str | None, b: str | None) -> bool:
        fa, fb = _delivery_footprint(a), _delivery_footprint(b)
        if fa is None or fb is None:
            return False
        if fa[2] not in self.attributed or fb[2] not in self.attributed:
            return False
        if fa[0] != fb[0]:
            if fa[1] != fb[1]:
                return True
            return fa[2] in self.fanout_safe and fb[2] in self.fanout_safe
        if fa[1] == fb[1]:
            return False
        return self._pair_key(fa[2], fb[2]) in self.same_node


def certified_relation(
    algorithm: str, matrix: dict[str, Any] | str | None = None
) -> CertifiedIndependence:
    """The certified independence relation for ``algorithm``.

    ``matrix`` is a matrix dict, a path to one (as written by
    ``python -m repro.analysis.static --commute-matrix``), or None to
    run the static analysis on the current checkout."""
    if matrix is None:
        from repro.analysis.static.commute import build_matrix

        matrix = build_matrix()
    elif isinstance(matrix, str):
        with open(matrix, encoding="utf-8") as fh:
            matrix = json.load(fh)
    algorithms = matrix.get("algorithms", {})
    if algorithm not in algorithms:
        raise KeyError(
            f"no commutativity matrix entry for algorithm {algorithm!r}; "
            f"have {sorted(algorithms)}"
        )
    return CertifiedIndependence(algorithms[algorithm])


def _relation_name(relation: Relation) -> str:
    if relation is independent:
        return "handcoded"
    return getattr(relation, "name", getattr(relation, "__name__", "custom"))


# ----------------------------------------------------------------------
# exploration strategies


@dataclass(frozen=True)
class Counterexample:
    """A schedule that violated a check, in replayable form."""

    choices: tuple[int, ...]
    drops: tuple[int, ...]
    status: str
    rule: str | None
    detail: str
    #: Which independence relation found it ("handcoded" | "certified" |
    #: a custom relation's name) — provenance for triage: a schedule
    #: only reachable under the certified refinement points at the
    #: matrix, not the protocol.
    relation: str = "handcoded"

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "schedule",
            "choices": list(self.choices),
            "drops": list(self.drops),
            "status": self.status,
            "rule": self.rule,
            "detail": self.detail,
            "relation": self.relation,
        }

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "Counterexample":
        return cls(
            choices=tuple(int(c) for c in raw["choices"]),
            drops=tuple(int(d) for d in raw.get("drops", ())),
            status=raw["status"],
            rule=raw.get("rule"),
            detail=raw.get("detail", ""),
            relation=raw.get("relation", "handcoded"),
        )


@dataclass
class ExplorationResult:
    scenario: Scenario
    strategy: str
    schedules: int = 0
    statuses: dict[str, int] = field(default_factory=dict)
    violations: list[Counterexample] = field(default_factory=list)
    #: Final-state fingerprints of all clean runs; POR soundness tests
    #: assert set-equality between reduced and full exploration.
    fingerprints: set[str] = field(default_factory=set)
    truncated: bool = False
    #: Independence relation the exploration pruned with.
    relation: str = "handcoded"
    #: Footprint-extractor failures observed during this exploration,
    #: keyed by op (surfaced by the CLI as ``explore.extractor_error``).
    #: A failing extractor demotes its deliveries to ``p?`` — still
    #: sound, but it silently weakens POR, so any nonzero count here
    #: deserves a look.
    extractor_errors: dict[str, int] = field(default_factory=dict)

    def record(self, run: RunResult, choices: Sequence[int], drops: Sequence[int] = ()) -> None:
        self.schedules += 1
        self.statuses[run.status] = self.statuses.get(run.status, 0) + 1
        if run.fingerprint is not None:
            self.fingerprints.add(run.fingerprint)
        if run.status != "ok":
            self.violations.append(
                Counterexample(
                    choices=tuple(choices),
                    drops=tuple(drops),
                    status=run.status,
                    rule=run.rule,
                    detail=run.detail,
                    relation=self.relation,
                )
            )

    @property
    def clean(self) -> bool:
        return not self.violations and not self.truncated


def _extractor_error_delta(before: dict[str, int]) -> dict[str, int]:
    """Per-op extractor failures accrued since the ``before`` snapshot.

    The counts live in a process-wide registry (`repro.net.packet`), so
    each exploration diffs against its own start rather than resetting —
    concurrent or repeated explorations never clobber each other."""
    return {
        op: count - before.get(op, 0)
        for op, count in extractor_errors().items()
        if count - before.get(op, 0) > 0
    }


def explore_dfs(
    scenario: Scenario,
    por: bool = True,
    max_schedules: int = 10_000,
    max_events: int = DEFAULT_MAX_EVENTS,
    relation: Relation | None = None,
) -> ExplorationResult:
    """Exhaustive depth-first schedule enumeration.

    Stateless exploration in the default-follower style: each executed
    schedule is a prescribed prefix extended with default choices, and
    every non-default alternative at every choice point at or beyond the
    prefix spawns one child prefix — so every interleaving of the tree
    is executed exactly once.

    With ``por=True``, sleep sets prune: a child whose first divergence
    fires an event that is *independent* of everything explored from the
    same state is skipped, because some explored interleaving already
    covers its happens-before order.  Sleep sets propagate forward along
    a run (an event leaves the sleep set when a dependent event fires)
    and siblings inherit the labels their earlier siblings explored.
    Membership is only trusted when the label is unique in the batch —
    unlabeled or duplicated labels never prune.

    ``relation`` selects the independence relation (default: the
    hand-coded :func:`independent`; pass :func:`certified_relation`'s
    result for the statically proven matrix).
    """
    rel = relation if relation is not None else independent
    result = ExplorationResult(
        scenario=scenario, strategy="dfs", relation=_relation_name(rel)
    )
    errors_before = extractor_errors()
    # Each entry: (prescribed prefix, sleep set at the end of the prefix).
    stack: list[tuple[tuple[int, ...], frozenset[str]]] = [((), frozenset())]
    while stack:
        if result.schedules >= max_schedules:
            result.truncated = True
            break
        prefix, sleep = stack.pop()
        run = run_scenario(
            scenario,
            choices=prefix,
            max_events=max_events,
            sleep=sleep if por else (),
            relation=rel,
        )
        result.record(run, run.choices)
        taken = run.choices
        # Branch at every choice point the prefix did not already fix.
        children: list[tuple[int, int, tuple[int, ...], frozenset[str]]] = []
        current: set[str] = set(sleep)
        for i in range(len(prefix), len(run.log)):
            point = run.log[i]
            chosen_label = point.labels[point.chosen]
            explored: list[str | None] = [chosen_label]
            for j, label in enumerate(point.labels):
                if j == point.chosen:
                    continue
                if (
                    por
                    and label is not None
                    and label in current
                    and point.labels.count(label) == 1
                ):
                    continue  # an equivalent interleaving is already explored
                if por:
                    inherited = current | {l for l in explored if l is not None}
                    child_sleep = frozenset(
                        z for z in inherited if rel(z, label)
                    )
                else:
                    child_sleep = frozenset()
                children.append((i, j, taken[:i] + (j,), child_sleep))
                explored.append(label)
            if por:
                current = {z for z in current if rel(z, chosen_label)}
        # Pop order must be deepest-first (so the default run's subtree
        # finishes before its shallow siblings start — the order the
        # sleep sets were built for); within one point, low j first.
        children.sort(key=lambda c: (c[0], -c[1]))
        for _i, _j, child_prefix, child_sleep in children:
            stack.append((child_prefix, child_sleep))
    result.extractor_errors = _extractor_error_delta(errors_before)
    return result


def explore_pct(
    scenario: Scenario,
    samples: int = 50,
    depth: int = 3,
    seed: int | None = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ExplorationResult:
    """Randomized PCT-style sampling: ``samples`` independent runs, each
    with fresh class priorities and ``depth - 1`` random change points
    over the schedule length observed in a probe run."""
    result = ExplorationResult(scenario=scenario, strategy="pct")
    errors_before = extractor_errors()
    base_seed = scenario.seed if seed is None else seed
    probe = run_scenario(scenario, max_events=max_events)
    result.record(probe, probe.choices)
    horizon = max(len(probe.log), 1)
    for sample in range(samples):
        rng = random.Random(f"{base_seed}:{sample}")
        points = rng.sample(range(horizon), min(depth - 1, horizon))
        sched = PctScheduler(rng, points)
        run = run_scenario(
            scenario, max_events=max_events, scheduler=sched
        )
        # The recorded choices replay through a plain RecordingScheduler.
        result.record(run, run.choices)
    result.extractor_errors = _extractor_error_delta(errors_before)
    return result


def explore_delay(
    scenario: Scenario,
    pairs: bool = False,
    max_schedules: int = 10_000,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> ExplorationResult:
    """Bounded delay injection via the ring's deterministic drop hook.

    A probe run counts frame delivery attempts; then every single-drop
    schedule (and, with ``pairs=True``, every ordered pair) runs under
    the default event order.  Each drop forces the transport through its
    retransmission timeout, delaying one message by ~500 ms relative to
    its peers — a class of reordering the same-tick scheduler cannot
    produce, because it moves events *across* ticks.
    """
    result = ExplorationResult(scenario=scenario, strategy="delay")
    errors_before = extractor_errors()
    probe = run_scenario(scenario, max_events=max_events)
    result.record(probe, probe.choices)
    attempts = probe.attempts
    singles = list(range(attempts))
    combos: list[tuple[int, ...]] = [(i,) for i in singles]
    if pairs:
        combos.extend(
            (i, j) for i in singles for j in singles if i < j
        )
    for drops in combos:
        if result.schedules >= max_schedules:
            result.truncated = True
            break
        run = run_scenario(
            scenario, drops=drops, max_events=max_events
        )
        result.record(run, run.choices, drops)
    result.extractor_errors = _extractor_error_delta(errors_before)
    return result


# ----------------------------------------------------------------------
# counterexample minimization


def _strip(choices: Sequence[int]) -> tuple[int, ...]:
    """Trailing default choices are implied by the prescription model,
    so ``[1, 0, 0]`` and ``[1]`` denote the same schedule — strip them."""
    out = list(choices)
    while out and out[-1] == 0:
        out.pop()
    return tuple(out)


def minimize_schedule(
    scenario: Scenario,
    choices: Sequence[int],
    drops: Sequence[int] = (),
    max_events: int = DEFAULT_MAX_EVENTS,
) -> Counterexample:
    """Delta-debug a violating schedule to a minimal choice sequence.

    ddmin-style: repeatedly zero out chunks of the prescription (zeroing,
    not deleting — deleting would shift later choices onto different
    choice points) at halving granularity, keeping any candidate that
    still fails with the *same* status and rule; then drop injected
    frame losses one at a time.  The result is the schedule with the
    fewest non-default choices that still triggers the original failure.
    """
    baseline = run_scenario(scenario, choices, drops, max_events)
    if baseline.status == "ok":
        raise ValueError("cannot minimize a schedule that does not fail")
    target = (baseline.status, baseline.rule)

    def still_fails(cand: Sequence[int], cand_drops: Sequence[int]) -> bool:
        run = run_scenario(scenario, cand, cand_drops, max_events)
        return (run.status, run.rule) == target

    current = _strip(choices)
    chunk = max(len(current), 1)
    while chunk >= 1:
        i = 0
        while i < len(current):
            width = min(chunk, len(current) - i)
            candidate = _strip(
                current[:i] + (0,) * width + current[i + width :]
            )
            if candidate != current and still_fails(candidate, drops):
                current = candidate
            else:
                i += chunk
        if chunk == 1:
            break
        chunk //= 2

    kept_drops = list(drops)
    i = 0
    while i < len(kept_drops):
        candidate_drops = kept_drops[:i] + kept_drops[i + 1 :]
        if still_fails(current, candidate_drops):
            kept_drops = candidate_drops
        else:
            i += 1

    final = run_scenario(scenario, current, kept_drops, max_events)
    return Counterexample(
        choices=current,
        drops=tuple(kept_drops),
        status=final.status,
        rule=final.rule,
        detail=final.detail,
    )


# ----------------------------------------------------------------------
# replayable artifacts (JSONL, same conventions as repro.sim.trace)


def save_counterexamples(
    path: str,
    scenario: Scenario,
    counterexamples: Iterable[Counterexample],
    relation: str = "handcoded",
) -> int:
    """Write a replayable artifact: one scenario header line (stamped
    with the independence relation that explored it), then one line per
    violating schedule.  Returns the number of schedules."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {"kind": "scenario", **scenario.to_dict(), "relation": relation}
            )
            + "\n"
        )
        for ce in counterexamples:
            fh.write(json.dumps(ce.to_dict()) + "\n")
            count += 1
    return count


def load_artifact(path: str) -> tuple[Scenario, list[Counterexample]]:
    scenario: Scenario | None = None
    schedules: list[Counterexample] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            if raw.get("kind") == "scenario":
                scenario = Scenario.from_dict(raw)
            elif raw.get("kind") == "schedule":
                schedules.append(Counterexample.from_dict(raw))
            else:
                raise ValueError(f"unknown artifact line kind: {raw.get('kind')!r}")
    if scenario is None:
        raise ValueError(f"artifact {path} has no scenario header line")
    return scenario, schedules


def replay_artifact(
    path: str, max_events: int = DEFAULT_MAX_EVENTS
) -> list[tuple[Counterexample, RunResult]]:
    """Re-execute every schedule in an artifact; pairs each recorded
    counterexample with the result its replay produced (a reproduction
    succeeds when status and rule match the recording)."""
    scenario, schedules = load_artifact(path)
    return [
        (ce, run_scenario(scenario, ce.choices, ce.drops, max_events))
        for ce in schedules
    ]
