"""The shared virtual memory — the paper's primary contribution.

A single coherent address space is layered over the simulated cluster's
private memories.  Coherence is *invalidation-based* and maintained at
page granularity, exactly as in IVY:

- pages marked read-only may have copies on many processors;
- a page with write access lives on exactly one processor (its owner);
- before a processor writes, every read copy is invalidated.

Three ownership-location algorithms from the paper (and Li & Hudak's
companion TOCS article) are implemented:

- :class:`repro.svm.centralized.CentralizedProtocol` — the *improved*
  centralized manager: one processor maps every page to its owner and
  forwards faults; the copy set travels with the owner, eliminating the
  confirmation message of the naive version.
- :class:`repro.svm.fixed.FixedDistributedProtocol` — manager duty
  statically distributed by ``H(p) = p mod N``.
- :class:`repro.svm.dynamic.DynamicDistributedProtocol` — ownership
  found by chasing per-node ``probOwner`` hints, updated on every
  forward, relinquish and invalidation (the algorithm IVY favours).

`repro.svm.address_space` provides the client-visible typed memory API;
`repro.svm.protocol` holds the fault/serve/invalidate machinery shared
by all three algorithms.
"""

from repro.svm.page import PageTable, PageTableEntry
from repro.svm.protocol import CoherenceProtocol, make_protocol
from repro.svm.broadcast import BroadcastProtocol
from repro.svm.centralized import CentralizedProtocol
from repro.svm.fixed import FixedDistributedProtocol
from repro.svm.dynamic import DynamicDistributedProtocol
from repro.svm.address_space import SharedAddressSpace

__all__ = [
    "PageTable",
    "PageTableEntry",
    "CoherenceProtocol",
    "make_protocol",
    "BroadcastProtocol",
    "CentralizedProtocol",
    "FixedDistributedProtocol",
    "DynamicDistributedProtocol",
    "SharedAddressSpace",
]
