"""The broadcast distributed manager algorithm.

The simplest distributed manager (Li & Hudak's broadcast solution, and
the first reply scheme of the paper's remote-operation module: "a reply
from any receiving processor ... is useful for broadcasting page fault
requests to locate page owners").  There is no ownership information at
all: a faulting processor broadcasts its request, every processor hears
it, and only the true owner answers.

The price is that *every* fault interrupts *every* processor — fine on
a handful of workstations, linearly worse as the ring grows.  The
manager ablation quantifies this against the centralized, fixed and
dynamic algorithms.

How much a broadcast *costs* is the fabric's business
(:mod:`repro.net.fabric`).  On the paper's token ring it is free
snooping — one rotation of the shared medium reaches everyone.  On the
switched backend the same ``send(BROADCAST)`` becomes an explicit
multicast tree: every edge re-transmits the full frame and relay hops
add latency, so this manager pays its true fan-out cost there (the
``golden_switched.json`` determinism fixtures pin it).  Nothing in
this module knows the difference — it just broadcasts.
"""

from __future__ import annotations

from typing import Any

from repro.svm.page import PageTableEntry
from repro.svm.protocol import CoherenceProtocol, ProtocolError

__all__ = ["BroadcastProtocol"]


class BroadcastProtocol(CoherenceProtocol):
    """Broadcast distributed manager: owner location by broadcast."""

    name = "broadcast"
    locates_by_broadcast = True

    #: Choice-point annotation for the schedule explorer: the broadcast
    #: manager keeps no ownership state at all beyond the page-table
    #: entries, so the base page-granular footprints need no additions
    #: (location broadcasts are already annotated via OP_LOCATE) —
    #: certified per handler by the static effect analysis.
    SCHED_FOOTPRINTS: dict[str, Any] = {}

    def fault_target(self, page: int, entry: PageTableEntry, write: bool) -> int:
        raise ProtocolError(
            "the broadcast manager never sends point-to-point fault requests"
        )  # pragma: no cover - _locate_request short-circuits

    def forward_target(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> int:
        raise ProtocolError(
            "the broadcast manager never forwards fault requests"
        )  # pragma: no cover - non-owners stay silent
