"""The dynamic distributed manager algorithm — IVY's preferred one.

There is no manager at all: every processor keeps a ``probOwner`` hint
per page ("the value ... is just a hint; ... if incorrect it will at
least provide the beginning of a sequence of processors through which
the true owner can be found").  A faulting processor sends its request
to its hint; non-owners forward along their own hints until the true
owner is reached, which replies directly to the origin.

Hints are updated at every opportunity, exactly as the paper lists:

- *forwarding a page-fault request*  → hint := the requesting processor
  (the requester will shortly know — or be — the true owner, so chains
  through it stay convergent and shorten over time);
- *relinquishing ownership*          → hint := the new owner
  (done in the base class's write server);
- *receiving an invalidation*        → hint := the new owner
  (done in the base class's invalidation server);
- completing a read fault            → hint := the replying owner.

Li & Hudak bound the total location cost of K faults on an N-processor
system by O(N + K log N) messages under this policy.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.net.packet import request_size
from repro.sim.process import Effect
from repro.svm.page import PageTableEntry
from repro.svm.protocol import CoherenceProtocol, ProtocolError

__all__ = ["DynamicDistributedProtocol"]


OP_HINT = "svm.hint"


class DynamicDistributedProtocol(CoherenceProtocol):
    """Dynamic distributed manager (Li & Hudak section 3.2).

    With ``SvmConfig.dynamic_broadcast_period = M > 0`` the refinement
    from the same analysis is enabled: after every M ownership transfers
    of a page, its new owner broadcasts the fresh ownership (no-reply
    scheme) so every stale probOwner chain collapses to length one.
    (The refinement's economics depend on the fabric: ring snooping
    makes the refresh nearly free, while the switched backend's
    multicast tree charges a transmission per receiver — see
    :mod:`repro.net.fabric`.)
    """

    name = "dynamic"

    #: Choice-point annotation for the schedule explorer: a hint refresh
    #: only touches the named page's probOwner field, so its delivery
    #: commutes with deliveries for other pages / other nodes.  The
    #: static effect analysis certifies this projection against
    #: ``_serve_hint``'s inferred accesses and proves ``svm.hint``'s
    #: fan-out-safety claim (lock-free, per-page writes only).
    SCHED_FOOTPRINTS = {OP_HINT: lambda payload: payload[0]}

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.broadcast_period = self.config.svm.dynamic_broadcast_period
        self.remote.register(OP_HINT, self._serve_hint)

    def on_became_owner(self, page: int, entry: PageTableEntry) -> None:
        period = self.broadcast_period
        if period and self.nnodes > 1 and entry.xfer_count % period == 0:
            # Fire-and-forget: a hint refresh must not sit on the fault's
            # critical path (and it needs no replies by design).
            self.remote.driver.spawn(
                self._broadcast_hint(page), f"hint-{self.node_id}-{page}"
            )
            self.counters.inc("hint_broadcasts")

    def _broadcast_hint(self, page: int) -> Generator[Effect, Any, None]:
        yield from self.remote.broadcast(
            OP_HINT, (page, self.node_id), nbytes=request_size(16), scheme="none"
        )

    def _serve_hint(
        self, origin: int, payload: tuple[int, int]
    ) -> Generator[Effect, Any, None]:
        """Lock-free hint refresh (same discipline as invalidation)."""
        page, owner = payload
        entry = self.table.entry(page)
        if not entry.is_owner:
            entry.prob_owner = owner
        return None
        yield  # pragma: no cover - makes this a generator

    def probable_owner_hop(self, page: int) -> int | None:
        """Checker hook: this node's next probOwner hop for ``page``, or
        None when the chain ends here (this node owns the page).  The
        oracle stitches per-node hops together and asserts Li & Hudak's
        invariant that every chain reaches the true owner at quiescence.
        """
        entry = self.table.entry(page)
        return None if entry.is_owner else entry.prob_owner

    def fault_target(self, page: int, entry: PageTableEntry, write: bool) -> int:
        target = entry.prob_owner
        if target == self.node_id:
            raise ProtocolError(
                f"node {self.node_id} faulting on page {page} has a "
                f"probOwner hint pointing at itself"
            )
        return target

    def forward_target(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> int:
        target = entry.prob_owner
        if target == self.node_id:
            raise ProtocolError(
                f"non-owner {self.node_id} has a self probOwner hint for page {page}"
            )
        if target == origin:
            # Forwarding a processor's fault request back at the faulting
            # processor would park it behind its own page lock forever.
            # Li & Hudak's hint invariant makes this unreachable on the
            # first pass, and the transport's sticky forwarding keeps
            # retransmitted duplicates on the original path; reaching this
            # line therefore indicates a protocol bug.
            raise ProtocolError(
                f"node {self.node_id} would forward page-{page} fault back "
                f"to its origin {origin}"
            )
        return target

    def on_forward(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> None:
        entry.prob_owner = origin
