"""Per-node page table entries for the shared virtual memory.

Each node keeps one entry per shared page ("a vector of records ...
stored in the private memory", per the paper).  The entry combines the
MMU protection state with the coherence-protocol fields of Li & Hudak's
algorithms:

- ``access``     — NIL / READ / WRITE, the simulated protection bits;
- ``lock``       — the per-entry lock every fault handler and server
  acquires (``lock(PTable[p].lock)`` in the pseudocode);
- ``is_owner``   — whether this node currently owns the page;
- ``copy_set``   — processors holding read copies (valid on the owner);
- ``prob_owner`` — the dynamic algorithm's ownership hint;
- ``on_disk``    — the owner evicted the page image to its paging disk;
- ``inv_epoch``  — bumped by every invalidation, used to detect a read
  copy that raced an ownership transfer (see `repro.svm.protocol`).

Entries are created lazily: untouched pages cost nothing, which is what
lets experiments declare a 64 MB shared space without materialising it.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.machine.mmu import Access
from repro.sim.sync import SimLock

__all__ = ["PageTableEntry", "PageTable"]


class PageTableEntry:
    """One node's view of one shared page."""

    __slots__ = (
        "access",
        "lock",
        "is_owner",
        "copy_set",
        "prob_owner",
        "on_disk",
        "inv_epoch",
        "xfer_count",
    )

    def __init__(self, initial_owner: bool, default_owner: int) -> None:
        self.lock = SimLock()
        self.copy_set: set[int] = set()
        self.prob_owner = default_owner
        self.on_disk = False
        self.inv_epoch = 0
        #: Ownership transfers this page has seen (travels with grants;
        #: drives the dynamic manager's periodic hint broadcast).
        self.xfer_count = 0
        self.is_owner = initial_owner
        # The initial owner holds every page writable (zero-filled frames
        # materialise on first touch); everyone else starts with no access.
        self.access = Access.WRITE if initial_owner else Access.NIL

    def owner_access(self) -> Access:
        """The protection the owner is entitled to right now: WRITE when
        it holds the sole copy, READ while read copies are outstanding."""
        return Access.READ if self.copy_set else Access.WRITE

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of the entry (violation reports, assertions)."""
        return {
            "access": self.access.name,
            "is_owner": self.is_owner,
            "copy_set": sorted(self.copy_set),
            "prob_owner": self.prob_owner,
            "on_disk": self.on_disk,
            "inv_epoch": self.inv_epoch,
            "xfer_count": self.xfer_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = []
        if self.is_owner:
            flags.append("owner")
        if self.on_disk:
            flags.append("on-disk")
        if self.lock.locked:
            flags.append("locked")
        return (
            f"<PTE {self.access.name} prob={self.prob_owner} "
            f"copies={sorted(self.copy_set)} {' '.join(flags)}>"
        )


class PageTable:
    """Lazy map from page number to :class:`PageTableEntry`."""

    def __init__(self, node_id: int, npages: int, default_owner: int) -> None:
        self.node_id = node_id
        self.npages = npages
        self.default_owner = default_owner
        self._entries: dict[int, PageTableEntry] = {}
        self._observer: Callable[[int, int, PageTableEntry], None] | None = None

    def attach_observer(
        self, observer: Callable[[int, int, PageTableEntry], None]
    ) -> None:
        """Register a callback ``observer(node_id, page, entry)`` invoked
        whenever an entry materialises.  The coherence oracle uses this to
        start shadowing a page the moment any node first touches it."""
        self._observer = observer
        for page, ent in self._entries.items():
            observer(self.node_id, page, ent)

    def entry(self, page: int) -> PageTableEntry:
        if not 0 <= page < self.npages:
            raise ValueError(f"page {page} out of range (npages={self.npages})")
        ent = self._entries.get(page)
        if ent is None:
            ent = PageTableEntry(
                initial_owner=(self.node_id == self.default_owner),
                default_owner=self.default_owner,
            )
            self._entries[page] = ent
            if self._observer is not None:
                self._observer(self.node_id, page, ent)
        return ent

    def known_entries(self) -> dict[int, PageTableEntry]:
        """Entries that have been materialised (for assertions/tests)."""
        return dict(self._entries)

    def raw_entries(self) -> dict[int, PageTableEntry]:
        """The live page->entry mapping, for data-plane fast-path probes.

        Callers must treat a missing page as "no access" and fall back to
        :meth:`entry` (which creates lazily and notifies the observer) —
        never insert into this mapping directly.
        """
        return self._entries

    def __getitem__(self, page: int) -> PageTableEntry:
        return self.entry(page)
