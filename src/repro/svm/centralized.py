"""The improved centralized manager algorithm.

One distinguished processor (the manager) maintains the owner of every
page.  A faulting processor always asks the manager; the manager
forwards the request to the owner, which replies directly to the
faulting processor (the remote-operation *forwarding* feature — this is
what makes the algorithm the "improved" variant: the copy set lives with
the owner and no confirmation message is needed, because the manager
updates its owner table the moment it forwards a write request).

Message cost per remote fault: 2 (request + reply) when the manager is
the owner or the requester co-resides with the manager, otherwise 3
(request, forward, reply) — plus invalidations for writes.
"""

from __future__ import annotations

from typing import Any

from repro.svm.page import PageTableEntry
from repro.svm.protocol import CoherenceProtocol, ProtocolError

__all__ = ["CentralizedProtocol"]


class CentralizedProtocol(CoherenceProtocol):
    """Improved centralized manager (Li & Hudak section 3.1)."""

    name = "centralized"

    #: Choice-point annotation for the schedule explorer: no ops beyond
    #: the base protocol's, and the manager's ``_owners`` table is keyed
    #: per page, so the base page-granular footprints remain sound — two
    #: same-tick deliveries for different pages commute even when both
    #: land on the manager and update its table.  This claim is no
    #: longer trusted: the static effect analysis re-derives every
    #: handler's page-keyed accesses and certifies the declaration
    #: (``python -m repro.analysis.static``).
    SCHED_FOOTPRINTS: dict[str, Any] = {}

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.manager_node = self.config.svm.manager_node
        #: Owner table; exists (and is consulted) only on the manager.
        self._owners: dict[int, int] = {}

    # ------------------------------------------------------------------

    def _owner_of(self, page: int) -> int:
        return self._owners.get(page, self.config.svm.manager_node)

    def manager_owner_view(self, page: int) -> int | None:
        """Checker hook: the manager's owner table is authoritative here,
        so at quiescence it must name the true owner of every page."""
        if self.node_id != self.manager_node:
            return None
        return self._owner_of(page)

    def fault_target(self, page: int, entry: PageTableEntry, write: bool) -> int:
        if self.node_id == self.manager_node:
            # The manager faulting on its own behalf looks the owner up
            # directly (a self-request would park behind the page lock
            # this fault already holds).
            owner = self._owner_of(page)
            if owner == self.node_id:
                raise ProtocolError(
                    f"manager's table says it owns page {page} while faulting on it"
                )
            if write:
                self._owners[page] = self.node_id
            return owner
        return self.manager_node

    def forward_target(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> int:
        if self.node_id == self.manager_node:
            owner = self._owner_of(page)
            if owner == self.node_id:
                raise ProtocolError(
                    f"manager table says node {owner} owns page {page} "
                    f"but its table entry disagrees"
                )
            return owner
        # A request can only reach a non-manager non-owner transiently
        # (ownership moved while the forward was in flight); route it
        # back through the manager, whose table is already newer.
        return self.manager_node

    def on_forward(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> None:
        if write and self.node_id == self.manager_node:
            # Improved algorithm: ownership is recorded at forward time,
            # eliminating the confirmation message of the naive version.
            self._owners[page] = origin

    def on_write_served(self, page: int, origin: int) -> None:
        if self.node_id == self.manager_node:
            self._owners[page] = origin
