"""The fixed distributed manager algorithm.

Manager duty is statically partitioned: page ``p`` is managed by
processor ``H(p) = p mod N`` (the paper's "most straightforward
approach ... distribute pages evenly in a fixed manner to all
processors").  Each manager keeps the owner table for its own pages;
fault handling is otherwise identical to the improved centralized
manager, but the management bottleneck is spread over all processors.
"""

from __future__ import annotations

from typing import Any

from repro.svm.page import PageTableEntry
from repro.svm.protocol import CoherenceProtocol, ProtocolError

__all__ = ["FixedDistributedProtocol"]


class FixedDistributedProtocol(CoherenceProtocol):
    """Fixed distributed manager (Li & Hudak section 3.1, distributed)."""

    name = "fixed"

    #: Choice-point annotation for the schedule explorer: like the
    #: centralized manager, the per-node ``_owners`` table is keyed per
    #: page (H distributes whole pages), so the base protocol's
    #: page-granular delivery footprints stay sound under this algorithm
    #: — certified per handler by the static effect analysis.
    SCHED_FOOTPRINTS: dict[str, Any] = {}

    def __init__(self, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        #: Owner table for the pages this node manages (H(p) == node_id).
        self._owners: dict[int, int] = {}

    # ------------------------------------------------------------------

    def manager_of(self, page: int) -> int:
        """The fixed mapping H: pages are distributed evenly."""
        return page % self.nnodes

    def _owner_of(self, page: int) -> int:
        return self._owners.get(page, self.config.svm.manager_node)

    def manager_owner_view(self, page: int) -> int | None:
        """Checker hook: only the page's fixed manager holds authority."""
        if self.node_id != self.manager_of(page):
            return None
        return self._owner_of(page)

    def fault_target(self, page: int, entry: PageTableEntry, write: bool) -> int:
        if self.node_id == self.manager_of(page):
            # This node manages the page it is faulting on: consult the
            # local owner table directly instead of self-requesting.
            owner = self._owner_of(page)
            if owner == self.node_id:
                raise ProtocolError(
                    f"manager {self.node_id}'s table says it owns page {page} "
                    f"while faulting on it"
                )
            if write:
                self._owners[page] = self.node_id
            return owner
        return self.manager_of(page)

    def forward_target(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> int:
        if self.node_id == self.manager_of(page):
            owner = self._owner_of(page)
            if owner == self.node_id:
                raise ProtocolError(
                    f"manager {self.node_id} table says it owns page {page} "
                    f"but its table entry disagrees"
                )
            return owner
        return self.manager_of(page)

    def on_forward(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> None:
        if write and self.node_id == self.manager_of(page):
            self._owners[page] = origin

    def on_write_served(self, page: int, origin: int) -> None:
        if self.node_id == self.manager_of(page):
            self._owners[page] = origin
