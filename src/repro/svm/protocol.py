"""Invalidation-based page coherence: the machinery shared by all three
manager algorithms.

The structure follows Li & Hudak's pseudocode: every fault handler and
every server acquires the per-node, per-page table-entry lock, with two
deliberate deviations required by an asynchronous (message-latency)
model:

1. **Invalidation servers are lock-free.**  They atomically set the page
   access to NIL, bump the entry's invalidation epoch, and record the new
   owner as the probable owner.  Taking the entry lock would deadlock in
   the classic cycle: new owner P holds its lock awaiting invalidation
   acks; copy-holder C is itself write-faulting on the page (holding its
   lock, its request parked at P behind P's lock) and C's invalidation
   server would wait on C's lock forever.

2. **Read replies are epoch-checked.**  Because invalidations do not wait
   for a faulting holder's lock, a read-fault reply could in principle be
   overtaken by an invalidation for a newer write (only under frame loss
   and retransmission — the ring itself delivers in order).  The fault
   handler snapshots ``inv_epoch`` before requesting and retries the
   fault if an invalidation landed meanwhile; the invalidation updated
   the ownership hint, so the retry chases the *new* owner.

Servers run as interrupt-level tasks (see `repro.net.remoteop`), so an
owner can serve faults while its application process computes; the
serial resource is the per-page lock, exactly as in the paper.

Fault handling composes with the Aegis pager: an owner whose page image
was evicted to disk pages it back in before serving — these are the disk
transfers Table 1 counts.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from repro.config import ClusterConfig
from repro.machine.memory import PhysicalMemory
from repro.machine.mmu import Access, AddressLayout
from repro.machine.pager import Pager
from repro.metrics.collect import Counters
from repro.net.packet import annotate_op, request_size
from repro.net.remoteop import Forward, NO_REPLY, RemoteOp, Reply
from repro.obs import NULL_OBS, NULL_SPAN, Observability, Span
from repro.sim.kernel import Simulator
from repro.sim.process import Compute, Effect
from repro.sim.trace import NULL_TRACE, TraceRecorder
from repro.svm.page import PageTable, PageTableEntry

__all__ = ["CoherenceProtocol", "ProtocolError", "make_protocol"]

OP_READ = "svm.read"
OP_WRITE = "svm.write"

#: Hoisted Access levels: fast-path checks compare the IntEnum directly
#: (a C-level int comparison) instead of dispatching permits_*().
_READ = Access.READ
_WRITE = Access.WRITE
OP_INV = "svm.inv"
OP_CHOWN = "svm.chown"
OP_LOCATE = "svm.locate"
OP_UPDATE = "svm.update"

#: Reply meaning "I no longer own this page, ask again" — used only by
#: the broadcast manager, whose transfers are locate-then-unicast.
RETRY = "svm.retry"

#: Wire size of a fault request: header + page number.
FAULT_REQUEST_BYTES = request_size(8)

# ---------------------------------------------------------------------------
# Choice-point annotations (consumed by repro.analysis.explore).
#
# Every remote op declares how to recover the page it concerns from its
# payload, so the net layer can stamp each delivery event with a
# ``p<page>`` footprint and the schedule explorer can prove that two
# same-tick deliveries commute (different target node AND different
# page).  Manager algorithms contribute their private ops through the
# ``SCHED_FOOTPRINTS`` class attribute (registered at construction).
annotate_op(OP_READ, lambda page: page)
annotate_op(OP_WRITE, lambda page: page)
annotate_op(OP_CHOWN, lambda page: page)
annotate_op(OP_LOCATE, lambda page: page)
annotate_op(OP_INV, lambda payload: payload[0])
annotate_op(OP_UPDATE, lambda payload: payload[0])


class ProtocolError(RuntimeError):
    """An invariant of the coherence protocol was violated."""


class CoherenceProtocol:
    """Base class: fault handling, page service, invalidation, eviction.

    Subclasses supply the ownership-location policy via
    :meth:`fault_target` (where a faulting processor sends its request)
    and :meth:`forward_target` (where a non-owner server forwards it),
    plus the hint/manager-table updates in :meth:`on_forward` and
    :meth:`on_write_forwarded`.
    """

    name = "base"

    #: Page-footprint extractors for ops *this algorithm* adds beyond the
    #: base protocol's, keyed by op name — the schedule explorer's
    #: choice-point annotation (see the module-level ``annotate_op``
    #: calls).  An algorithm whose extra state is keyed by something the
    #: explorer cannot see must leave its ops out, which the explorer
    #: treats conservatively (the delivery commutes with nothing).
    #: Every declaration here is *certified* by the static effect
    #: analysis (``repro.analysis.static.footprints``): CI proves the
    #: extractor names every page-keyed state access of the op's
    #: handler, and fails on any drift.
    SCHED_FOOTPRINTS: dict[str, Any] = {}

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        nnodes: int,
        layout: AddressLayout,
        table: PageTable,
        memory: PhysicalMemory,
        pager: Pager,
        remote: RemoteOp,
        config: ClusterConfig,
        counters: Counters,
        trace: TraceRecorder = NULL_TRACE,
        obs: Observability = NULL_OBS,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.nnodes = nnodes
        self.layout = layout
        self.table = table
        self.memory = memory
        self.pager = pager
        self.remote = remote
        self.config = config
        self.counters = counters
        self.trace = trace
        self.obs = obs
        self.page_size = layout.page_size
        #: Online coherence oracle (repro.analysis), attached by the
        #: cluster when ``ClusterConfig.checker`` is set.  Checking is
        #: pure observation: the oracle never yields effects, so it can
        #: run inside servers and fault handlers without perturbing
        #: simulated time.
        self.checker = None
        #: Page-snapshot free list, shared fabric-wide (repro.net.pool).
        #: Servers snapshot frames into pooled buffers; the *unicast
        #: requester* returns each buffer once its bytes are installed
        #: (or proven stale).  Multicast payloads (update pushes) are
        #: shared by many receivers and never come from this pool.
        self._pages = remote.transport.ring.pages
        for op, page_of in type(self).SCHED_FOOTPRINTS.items():
            annotate_op(op, page_of)
        remote.register(OP_READ, self._serve_read)
        remote.register(OP_WRITE, self._serve_write)
        remote.register(OP_INV, self._serve_inv)
        remote.register(OP_CHOWN, self._serve_chown)
        remote.register(OP_LOCATE, self._serve_locate)
        remote.register(OP_UPDATE, self._serve_update)

        # Duplicate probes: a retransmitted fault request that this node
        # once forwarded should be *served* here if ownership has since
        # arrived (otherwise the stale sticky route loops it away forever).
        def owns(page: int) -> bool:
            return self.table.entry(page).is_owner

        remote.register_local_probe(OP_READ, owns)
        remote.register_local_probe(OP_WRITE, owns)
        remote.register_local_probe(OP_CHOWN, owns)
        pager.set_eviction_policy(self._evict)
        if config.svm.write_policy not in ("invalidate", "update"):
            raise ValueError(f"unknown write policy {config.svm.write_policy!r}")
        #: "update" keeps read copies alive and pushes fresh page contents
        #: to the copy set on every write (extension; IVY invalidates).
        self.update_policy = config.svm.write_policy == "update"

    def _note(self, category: str, **fields: Any) -> None:
        """Publish one protocol transition to the tracer and the checker."""
        if self.trace:
            self.trace.emit(category, **fields)
        if self.checker is not None:
            self.checker.on_event(category, self.sim.now, fields)

    @property
    def _observed(self) -> bool:
        """Whether anyone is listening for protocol transitions."""
        return bool(self.trace) or self.checker is not None

    def manager_owner_view(self, page: int) -> int | None:
        """The owner this node's *manager state* believes ``page`` has,
        or None when this node keeps no authority over the page.  The
        manager algorithms override this; the oracle cross-checks it
        against the true owner at quiescent points."""
        return None

    # ------------------------------------------------------------------
    # policy hooks (implemented by the three manager algorithms)

    def fault_target(self, page: int, entry: PageTableEntry, write: bool) -> int:
        """Processor a faulting node sends its request to.

        When the faulting processor is itself the manager of the page it
        consults its own ownership table directly (a self-request would
        park behind the very page lock the fault holds) and, for writes,
        records itself as the new owner — the same at-forward-time update
        the manager performs for remote requesters.
        """
        raise NotImplementedError

    def forward_target(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> int:
        """Next hop for a request that arrived at a non-owner."""
        raise NotImplementedError

    def on_forward(
        self, page: int, entry: PageTableEntry, origin: int, write: bool
    ) -> None:
        """Hint/manager-table update performed when forwarding."""

    def on_write_served(self, page: int, origin: int) -> None:
        """Called after this node relinquished ownership of ``page`` to
        ``origin`` by serving a write fault.  Manager algorithms use it to
        keep the ownership table current when the manager itself was the
        owner (no forward happened, so :meth:`on_forward` never ran)."""

    def on_became_owner(self, page: int, entry: PageTableEntry) -> None:
        """Called (lock held) right after this node acquired ownership."""

    #: True for the broadcast distributed manager: faults are located by
    #: broadcasting; non-owner servers stay silent instead of forwarding.
    locates_by_broadcast = False

    def _locate_request(
        self,
        page: int,
        entry: PageTableEntry,
        op: str,
        write: bool,
        span: Span | None = None,
    ) -> Generator[Effect, Any, Any]:
        """Send one fault request to wherever the owner can be found.

        Under the broadcast manager the request is two-phase: a pure
        location broadcast (no side effects anywhere — non-owners stay
        silent, the owner replies with its identity *without* acting),
        then a point-to-point transfer to the located owner.  The split
        matters for correctness: a one-phase broadcast transfer can be
        served twice — once by the owner at delivery time and again by
        whichever node has *become* owner by the time its parked copy of
        the request gets the page lock — orphaning the page's ownership.
        If ownership moved between the phases, the unicast is answered
        with RETRY and the location starts over.
        """
        if self.locates_by_broadcast:
            while True:
                owner = yield from self.remote.broadcast(
                    OP_LOCATE, page, nbytes=FAULT_REQUEST_BYTES, scheme="any",
                    span=span,
                )
                value = yield from self.remote.request(
                    owner, op, page, nbytes=FAULT_REQUEST_BYTES, span=span
                )
                if value == RETRY:
                    self.counters.inc("locate_retries")
                    continue
                return value
        target = self.fault_target(page, entry, write=write)
        value = yield from self.remote.request(
            target, op, page, nbytes=FAULT_REQUEST_BYTES, span=span
        )
        return value

    def _serve_locate(self, origin: int, page: int) -> Generator[Effect, Any, Any]:
        """Owner-location broadcast: reply with our identity if and only
        if we own the page; otherwise stay silent.  Completely free of
        side effects, so retransmitted duplicates may re-execute."""
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            if entry.is_owner:
                return Reply(self.node_id, nbytes=48)
            return NO_REPLY
        finally:
            entry.lock.release()

    # ------------------------------------------------------------------
    # client side: called by the shared address space

    def has_access(self, page: int, write: bool) -> bool:
        """MMU fast-path check: protection sufficient and frame resident.

        Pure (no touch, no lock): the data-plane fast path probes every
        spanned page with this before copying anything."""
        entry = self.table.entry(page)
        # Access is an IntEnum: comparing against WRITE/READ directly is
        # the permits_* predicates without the method dispatch.
        needed = entry.access >= (Access.WRITE if write else Access.READ)
        return needed and page in self.memory

    def ensure_read(self, page: int) -> Generator[Effect, Any, None]:
        """Make ``page`` readable locally, faulting if necessary."""
        entry = self.table.entry(page)
        if entry.access >= _READ and page in self.memory:
            self.memory.touch(page)
            return
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            if entry.access >= _READ and page in self.memory:
                return
            if entry.is_owner:
                # Owner whose frame is on disk (or never touched): Aegis
                # page-in, no coherence traffic.
                yield from self._materialize_owner(page, entry)
                return
            started = self.sim.now
            self.counters.inc("read_faults")
            if self._observed:
                self._note("svm.fault_begin", node=self.node_id, page=page, write=False)
            obs = self.obs
            # Span construction (and its kwargs dict) is per-fault work;
            # skip it entirely when observability is off.
            span = (
                obs.span_begin("fault.read", node=self.node_id, page=page)
                if obs
                else NULL_SPAN
            )
            try:
                yield Compute(self.config.svm.fault_handler_cost)
                while True:
                    epoch = entry.inv_epoch
                    data, owner = yield from self._locate_request(
                        page, entry, OP_READ, write=False, span=span
                    )
                    if entry.inv_epoch != epoch:
                        # Our copy was invalidated while in flight: the page
                        # has a newer owner; chase it.
                        if data is not None:
                            self._pages.give(data)
                        self.counters.inc("stale_read_retries")
                        continue
                    # `data` is already a uint8 ndarray snapshot (the owner
                    # copies its frame at serve time); install() copies it
                    # into the local frame, after which the pooled buffer
                    # is dead and goes back to the free list.
                    if self.pager.try_install(page, data) is None:
                        yield from self.pager.install(page, data)
                    if data is not None:
                        self._pages.give(data)
                    if entry.inv_epoch != epoch:
                        # install() may consume time under frame pressure
                        # (evictions hit the disk); an invalidation that
                        # landed during that window makes the image stale.
                        self.memory.drop(page)
                        self.counters.inc("stale_read_retries")
                        continue
                    entry.access = Access.READ
                    entry.prob_owner = owner
                    break
                latency = self.sim.now - started
                self.counters.inc("read_fault_ns", latency)
                if self.obs:
                    self.obs.observe("fault.read_ns", latency)
                if self._observed:
                    self._note(
                        "svm.read_fault", node=self.node_id, page=page, owner=owner,
                        ns=latency,
                    )
            finally:
                self.obs.span_end(span)
        finally:
            entry.lock.release()

    def ensure_write(self, page: int) -> Generator[Effect, Any, None]:
        """Make ``page`` writable locally (sole copy), faulting if needed."""
        entry = self.table.entry(page)
        if entry.access >= _WRITE and page in self.memory:
            self.memory.touch(page)
            return
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            yield from self._ensure_write_locked(page, entry)
        finally:
            entry.lock.release()

    def acquire_page_write(self, page: int) -> Generator[Effect, Any, PageTableEntry]:
        """Acquire the page's entry lock and write access, and *keep the
        lock held* on return.

        This is the substrate of IVY's atomic synchronisation primitives
        ("implemented by pinning memory pages and using test-and-set"):
        while the lock is held, remote fault requests for the page park
        behind it, so a read-modify-write of a record inside the page is
        atomic cluster-wide.  Callers must pair with
        :meth:`release_page_write` and must not touch other shared pages
        in between (single-page critical sections cannot deadlock; see
        `repro.sync`).
        """
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        yield from self._ensure_write_locked(page, entry)
        self.memory.pin(page)
        return entry

    def release_page_write(self, page: int) -> None:
        """Release the pin and lock taken by :meth:`acquire_page_write`."""
        self.memory.unpin(page)
        self.table.entry(page).lock.release()

    def _ensure_write_locked(
        self, page: int, entry: PageTableEntry
    ) -> Generator[Effect, Any, None]:
        """Write-fault body; caller holds ``entry.lock``."""
        if entry.access >= _WRITE and page in self.memory:
            self.memory.touch(page)
            return
        started = self.sim.now
        if entry.is_owner:
            # Upgrade in place: the owner knows the copy set locally.
            yield from self._materialize_owner(page, entry)
            if entry.copy_set and not self.update_policy:
                self.counters.inc("write_faults")
                if self._observed:
                    self._note(
                        "svm.fault_begin", node=self.node_id, page=page, write=True
                    )
                obs = self.obs
                if obs:
                    span = obs.span_begin(
                        "fault.write", node=self.node_id, page=page,
                        start=started, upgrade=True,
                    )
                else:
                    span = NULL_SPAN
                try:
                    yield Compute(self.config.svm.fault_handler_cost)
                    yield from self._invalidate(page, entry.copy_set, span=span)
                    invalidated = sorted(entry.copy_set)
                    entry.copy_set = set()
                    latency = self.sim.now - started
                    self.counters.inc("write_fault_ns", latency)
                    if self.obs:
                        self.obs.observe("fault.write_ns", latency)
                    entry.access = Access.WRITE
                    if self._observed:
                        self._note(
                            "svm.write_upgrade",
                            node=self.node_id, page=page, invalidated=invalidated,
                            ns=latency,
                        )
                    return
                finally:
                    self.obs.span_end(span)
            entry.access = Access.WRITE
            return
        self.counters.inc("write_faults")
        if self._observed:
            self._note("svm.fault_begin", node=self.node_id, page=page, write=True)
        obs = self.obs
        if obs:
            span = obs.span_begin(
                "fault.write", node=self.node_id, page=page, start=started
            )
        else:
            span = NULL_SPAN
        try:
            yield Compute(self.config.svm.fault_handler_cost)
            data, copy_set, xfer = yield from self._locate_request(
                page, entry, OP_WRITE, write=True, span=span
            )
            if self.pager.try_install(page, data) is None:
                yield from self.pager.install(page, data)
            if data is not None:
                self._pages.give(data)
            entry.is_owner = True
            entry.on_disk = False
            entry.prob_owner = self.node_id
            entry.xfer_count = xfer
            holders = set(copy_set) - {self.node_id}
            if self.update_policy:
                # Copies stay alive; the new owner inherits the copy set and
                # keeps it fresh on every store.
                entry.copy_set = holders
            else:
                if holders:
                    yield from self._invalidate(page, holders, span=span)
                entry.copy_set = set()
            entry.access = Access.WRITE
            latency = self.sim.now - started
            self.counters.inc("write_fault_ns", latency)
            if self.obs:
                self.obs.observe("fault.write_ns", latency)
        finally:
            self.obs.span_end(span)
        self.on_became_owner(page, entry)
        if self._observed:
            self._note(
                "svm.write_fault", node=self.node_id, page=page,
                invalidated=sorted(holders),
                ns=latency,
            )

    # ------------------------------------------------------------------
    # owner-side helpers

    def _materialize_owner(
        self, page: int, entry: PageTableEntry
    ) -> Generator[Effect, Any, None]:
        """Bring the owner's frame back (disk page-in or first-touch zeros)
        and restore the protection the owner is entitled to."""
        if page not in self.memory:
            if entry.on_disk:
                yield from self.pager.page_in(page)
                entry.on_disk = False
            elif self.pager.try_install(page, None) is None:
                yield from self.pager.install(page, None)
        else:
            self.memory.touch(page)
        if entry.access is Access.NIL:
            entry.access = (
                Access.WRITE if self.update_policy else entry.owner_access()
            )

    def _invalidate(
        self, page: int, holders: set[int], span: Span | None = None
    ) -> Generator[Effect, Any, None]:
        """Invalidate every read copy; waits for all acknowledgements
        (the broadcast "replies from all" scheme of the paper)."""
        targets = tuple(sorted(holders))
        self.counters.inc("invalidations_sent", len(targets))
        if self._observed:
            self._note(
                "svm.invalidate", node=self.node_id, page=page, targets=targets
            )
        obs = self.obs
        if obs:
            obs.observe("inv.fanout", len(targets))
            ispan = obs.span_begin(
                "inv", parent=span, node=self.node_id, page=page, fanout=len(targets)
            )
        else:
            ispan = NULL_SPAN
        try:
            yield from self.remote.multicast(
                targets, OP_INV, (page, self.node_id), nbytes=request_size(16),
                span=ispan,
            )
        finally:
            self.obs.span_end(ispan)

    # ------------------------------------------------------------------
    # servers (run as interrupt-level tasks on the serving node)

    def _serve_read(self, origin: int, page: int) -> Generator[Effect, Any, Any]:
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        locked = True
        try:
            if not entry.is_owner:
                entry.lock.release()
                locked = False
                if self.locates_by_broadcast:
                    return Reply(RETRY, nbytes=48)  # moved since location
                nxt = self.forward_target(page, entry, origin, write=False)
                self.on_forward(page, entry, origin, write=False)
                self.counters.inc("faults_forwarded")
                return Forward(nxt)
            if origin == self.node_id:
                raise ProtocolError(f"owner {origin} read-faulted on its own page {page}")
            if page not in self.memory and not entry.on_disk:
                # Never-written page: grant a zero-fill copy without
                # shipping a kilobyte of zeros (zero-fill-on-demand).
                entry.copy_set.add(origin)
                entry.access = Access.READ if entry.access is not Access.NIL else entry.access
                self.counters.inc("zero_grants")
                if self._observed:
                    self._note(
                        "svm.grant", node=self.node_id, page=page, to=origin,
                        write=False, zero=True,
                    )
                return Reply((None, self.node_id), nbytes=48)
            yield from self._materialize_owner(page, entry)
            entry.copy_set.add(origin)
            entry.access = Access.READ
            # Snapshot the frame into a pooled buffer (one copy, no
            # bytes-object round trip).  A zero-copy view would be unsafe:
            # the owner may upgrade-write this very frame while the reply
            # is in flight.  The requester returns the buffer at install.
            data = self._pages.copy_of(self.memory.data(page))
            yield Compute(self.page_size * self.config.cpu.ns_per_byte_copy)
            self.counters.inc("page_copies_sent")
            if self._observed:
                self._note(
                    "svm.grant", node=self.node_id, page=page, to=origin,
                    write=False, zero=False,
                )
            return Reply((data, self.node_id), nbytes=self.page_size + 48)
        finally:
            if locked:
                entry.lock.release()

    def _serve_write(self, origin: int, page: int) -> Generator[Effect, Any, Any]:
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        locked = True
        try:
            if not entry.is_owner:
                entry.lock.release()
                locked = False
                if self.locates_by_broadcast:
                    return Reply(RETRY, nbytes=48)  # moved since location
                nxt = self.forward_target(page, entry, origin, write=True)
                self.on_forward(page, entry, origin, write=True)
                self.counters.inc("faults_forwarded")
                return Forward(nxt)
            if origin == self.node_id:
                raise ProtocolError(f"owner {origin} write-faulted on its own page {page}")
            if page not in self.memory and not entry.on_disk:
                # Never-written page: transfer ownership zero-filled.
                data = None
                nbytes = 48
                self.counters.inc("zero_grants")
            else:
                yield from self._materialize_owner(page, entry)
                data = self._pages.copy_of(self.memory.data(page))
                nbytes = self.page_size + 48
            keep_copy = self.update_policy and data is not None
            members = set(entry.copy_set)
            if keep_copy:
                members.add(self.node_id)
            copy_set = tuple(sorted(members))
            xfer = entry.xfer_count + 1
            # Relinquish ownership: the requester becomes the owner.
            # Under the invalidation policy the old owner drops its frame
            # (the requester invalidates the copy set); under the update
            # policy it demotes itself to a read copy the new owner will
            # keep fresh.
            entry.is_owner = False
            entry.copy_set = set()
            entry.prob_owner = origin
            if entry.on_disk:
                self.pager.disk.discard(page)
                entry.on_disk = False
            if keep_copy:
                entry.access = Access.READ
            else:
                entry.access = Access.NIL
                if page in self.memory:
                    self.memory.drop(page)
            self.on_write_served(page, origin)
            if self._observed:
                self._note(
                    "svm.grant", node=self.node_id, page=page, to=origin,
                    write=True, zero=data is None, copy_set=list(copy_set),
                )
            if data is not None:
                yield Compute(self.page_size * self.config.cpu.ns_per_byte_copy)
            self.counters.inc("page_transfers_sent")
            return Reply((data, copy_set, xfer), nbytes=nbytes + 8 * len(copy_set))
        finally:
            if locked:
                entry.lock.release()

    def take_ownership(self, page: int) -> Generator[Effect, Any, None]:
        """Acquire ownership of ``page`` *without* transferring its bytes.

        Used by process migration for the upper portion of a migrating
        process's stack: "the upper portion of the stack need not move to
        the destination processor because its content is meaningless.
        Ownership transfer is inexpensive because it only requires
        setting the protection bits."  The caller asserts the content is
        dead; the new owner's frame materialises zero-filled on first
        touch.
        """
        entry = self.table.entry(page)
        if entry.is_owner and entry.access >= _WRITE:
            return
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            if entry.is_owner:
                if entry.copy_set:
                    yield from self._invalidate(page, entry.copy_set)
                    entry.copy_set = set()
                entry.access = entry.owner_access()
                return
            if self._observed:
                self._note("svm.fault_begin", node=self.node_id, page=page, write=True)
            started = self.sim.now
            obs = self.obs
            span = (
                obs.span_begin("fault.chown", node=self.node_id, page=page)
                if obs
                else NULL_SPAN
            )
            try:
                copy_set, xfer = yield from self._locate_request(
                    page, entry, OP_CHOWN, write=True, span=span
                )
                entry.is_owner = True
                entry.on_disk = False
                entry.prob_owner = self.node_id
                entry.xfer_count = xfer
                holders = set(copy_set) - {self.node_id}
                if holders:
                    yield from self._invalidate(page, holders, span=span)
                entry.copy_set = set()
                entry.access = Access.WRITE
                self.counters.inc("ownership_transfers")
                if self.obs:
                    self.obs.observe("fault.chown_ns", self.sim.now - started)
            finally:
                self.obs.span_end(span)
            self.on_became_owner(page, entry)
            if self._observed:
                self._note("svm.chown", node=self.node_id, page=page)
        finally:
            entry.lock.release()

    def _serve_chown(self, origin: int, page: int) -> Generator[Effect, Any, Any]:
        """Relinquish ownership without sending the page image."""
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        locked = True
        try:
            if not entry.is_owner:
                entry.lock.release()
                locked = False
                if self.locates_by_broadcast:
                    return Reply(RETRY, nbytes=48)  # moved since location
                nxt = self.forward_target(page, entry, origin, write=True)
                self.on_forward(page, entry, origin, write=True)
                self.counters.inc("faults_forwarded")
                return Forward(nxt)
            if origin == self.node_id:
                raise ProtocolError(f"owner {origin} chown-requested its own page {page}")
            copy_set = tuple(sorted(entry.copy_set))
            xfer = entry.xfer_count + 1
            entry.is_owner = False
            entry.access = Access.NIL
            entry.copy_set = set()
            entry.prob_owner = origin
            if entry.on_disk:
                self.pager.disk.discard(page)
                entry.on_disk = False
            if page in self.memory:
                self.memory.drop(page)
            self.on_write_served(page, origin)
            if self._observed:
                self._note(
                    "svm.grant", node=self.node_id, page=page, to=origin,
                    write=True, zero=True, copy_set=list(copy_set),
                )
            return Reply((copy_set, xfer), nbytes=48 + 8 * len(copy_set))
        finally:
            if locked:
                entry.lock.release()

    def push_update_locked(self, page: int, entry: PageTableEntry) -> Generator[Effect, Any, None]:
        """Multicast this page's fresh contents to every copy holder.

        Caller holds ``entry.lock`` and is the owner; the lock spans the
        store *and* the push, so an ownership transfer observes either
        the pre-store or the fully-pushed state — never a mutated frame
        whose copies were silently left stale."""
        if not entry.copy_set:
            return
        data = self.memory.data(page).copy()
        yield Compute(self.page_size * self.config.cpu.ns_per_byte_copy)
        self.counters.inc("updates_sent", len(entry.copy_set))
        if self.obs:
            self.obs.observe("update.fanout", len(entry.copy_set))
        yield from self.remote.multicast(
            tuple(sorted(entry.copy_set)), OP_UPDATE, (page, data),
            nbytes=self.page_size + 48,
        )

    def locked_store(
        self, page: int, writer: Callable[[np.ndarray], None]
    ) -> Generator[Effect, Any, None]:
        """Write-policy-aware store: take the page lock, get write access,
        apply ``writer(frame)`` (plain code), and push updates to copy
        holders (update policy only).  The invalidation policy's stores
        use the lock-free fast path instead."""
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            yield from entry.lock.acquire()
        try:
            yield from self._ensure_write_locked(page, entry)
            writer(self.memory.data(page))
            yield from self.push_update_locked(page, entry)
        finally:
            entry.lock.release()

    def _serve_update(
        self, origin: int, payload: tuple[int, Any]
    ) -> Generator[Effect, Any, bool]:
        """Apply a pushed page image to our read copy (lock-free, like
        invalidation).  If we have no frame to apply it to — e.g. a read
        grant is still in flight — bump the invalidation epoch so the
        pending fault retries and fetches the fresh bytes."""
        page, data = payload
        entry = self.table.entry(page)
        if entry.is_owner:
            raise ProtocolError(
                f"node {self.node_id} received an update for page {page} it owns"
            )
        if page in self.memory and entry.access >= _READ:
            frame = self.memory.data(page)
            frame[:] = data  # pushed image is a shared read-only snapshot
        else:
            entry.inv_epoch += 1
        entry.prob_owner = origin
        self.counters.inc("updates_received")
        if self._observed:
            self._note(
                "svm.update_recv", node=self.node_id, page=page,
                applied=page in self.memory and entry.access >= _READ,
            )
        yield Compute(self.page_size * self.config.cpu.ns_per_byte_copy)
        return True

    def _serve_inv(self, origin: int, payload: tuple[int, int]) -> Generator[Effect, Any, bool]:
        """Lock-free invalidation (see module docstring for why)."""
        page, new_owner = payload
        entry = self.table.entry(page)
        if entry.is_owner:
            raise ProtocolError(
                f"node {self.node_id} received invalidation for page {page} it owns"
            )
        entry.access = Access.NIL
        entry.prob_owner = new_owner
        entry.inv_epoch += 1
        if page in self.memory and not self.memory.pinned(page):
            self.memory.drop(page)
        self.counters.inc("invalidations_received")
        if self._observed:
            self._note(
                "svm.inv_recv", node=self.node_id, page=page,
                owner=new_owner, epoch=entry.inv_epoch,
            )
        yield Compute(self.config.cpu.ns_per_op * 20)
        return True

    # ------------------------------------------------------------------
    # eviction policy (invoked by the pager under frame pressure)

    def _evict(self, page: int) -> Generator[Effect, Any, bool]:
        entry = self.table.entry(page)
        if not entry.lock.try_acquire():
            return False  # protocol operation in flight: veto this victim
        try:
            if page not in self.memory:
                return True
            if self.memory.pinned(page):
                return False
            if entry.is_owner:
                yield from self.pager.page_out(page)
                entry.on_disk = True
                entry.access = Access.NIL
                self.counters.inc("owner_pageouts")
                if self._observed:
                    self._note("svm.drop", node=self.node_id, page=page, pageout=True)
            else:
                # A read copy can be dropped silently: the owner keeps the
                # data, and a later invalidation to a non-holder is a no-op.
                self.memory.drop(page)
                entry.access = Access.NIL
                self.counters.inc("copy_drops")
                if self._observed:
                    self._note("svm.drop", node=self.node_id, page=page, pageout=False)
            return True
        finally:
            entry.lock.release()


def make_protocol(algorithm: str, **kwargs: Any) -> CoherenceProtocol:
    """Instantiate the named coherence algorithm for one node."""
    from repro.svm.broadcast import BroadcastProtocol
    from repro.svm.centralized import CentralizedProtocol
    from repro.svm.dynamic import DynamicDistributedProtocol
    from repro.svm.fixed import FixedDistributedProtocol

    classes = {
        "centralized": CentralizedProtocol,
        "fixed": FixedDistributedProtocol,
        "dynamic": DynamicDistributedProtocol,
        "broadcast": BroadcastProtocol,
    }
    try:
        cls = classes[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown coherence algorithm {algorithm!r}; "
            f"expected one of {sorted(classes)}"
        ) from None
    return cls(**kwargs)
