"""The client-visible shared virtual memory: typed block reads/writes.

Application processes never see pages; they read and write byte ranges
and typed arrays at virtual addresses, exactly as IVY programs
dereference Pascal pointers into the shared portion of their address
space.  Each operation:

1. checks protection per touched page (the MMU fast path),
2. enters the coherence protocol on a violation (the page fault), and
3. moves the payload with vectorised numpy copies against the frame
   contents — the data plane is real bytes, so protocol bugs surface as
   wrong answers in the numeric golden tests.

Costs: faults charge their own time inside the protocol; the local copy
charges ``ns_per_byte_copy`` per byte (the memcpy the program would
execute).  Arithmetic is charged separately by applications as flops,
so there is no double counting.

Every accessor has a *no-fault fast path*: when each spanned page
already holds sufficient access, the operation copies straight against
the frames and yields its single cost effect without entering the
per-span fault machinery.  The fast path is schedule-preserving by
construction — ``has_access`` is pure, the per-page ``data()`` touches
happen in the same span order, and exactly the same one ``Compute`` is
yielded — it only removes Python interpreter work, never a simulated
event.  Scalar reads/writes additionally skip the array round-trip with
a fixed-width struct view of the frame.

All generators here must be driven with ``yield from`` inside a
simulated process.  Scalar helpers exist for the common cases; prefer
the array forms — block-granular access is both how real programs touch
memory and what keeps the simulation fast (guide rule: vectorise).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Generator

import numpy as np

from repro.config import CpuConfig
from repro.machine.mmu import Access, AddressLayout
from repro.metrics.collect import Counters
from repro.sim.process import Compute, Effect
from repro.svm.protocol import CoherenceProtocol

__all__ = ["SharedAddressSpace"]

#: Hoisted Access levels for the inline fast-path probes (see
#: CoherenceProtocol.has_access, whose logic these probes flatten).
_READ = Access.READ
_WRITE = Access.WRITE

# Fixed-width codecs for the scalar fast paths.  Little-endian matches
# numpy's native layout on every platform this simulator targets, so the
# bytes written are identical to the ndarray round-trip they replace.
_F64 = struct.Struct("<d")
_I64 = struct.Struct("<q")


class SharedAddressSpace:
    """One node's window onto the single shared address space."""

    def __init__(
        self,
        protocol: CoherenceProtocol,
        layout: AddressLayout,
        cpu: CpuConfig,
        counters: Counters,
    ) -> None:
        self.protocol = protocol
        self.layout = layout
        self.cpu = cpu
        self.counters = counters
        self._memory = protocol.memory
        # Data-plane fast-path bindings.  Both mappings are live views
        # that are never rebound; a probe miss (no entry / insufficient
        # access / frame not resident) falls back to the faulting path,
        # which goes through the real accessors.  Direct frame reads
        # pair with a recency move_to_end, preserving the exact LRU
        # order (and hence the eviction schedule) of PhysicalMemory.data.
        self._entries_get = protocol.table.raw_entries().get
        self._frames_map = protocol.memory.raw_frames()
        self._recency_move = protocol.memory.raw_recency().move_to_end

    # ------------------------------------------------------------------
    # byte-granular primitives

    def read_bytes(self, addr: int, nbytes: int) -> Generator[Effect, Any, np.ndarray]:
        """Read ``nbytes`` starting at ``addr``; returns a uint8 array."""
        spans = self.layout.spans_list(addr, nbytes)
        out = np.empty(nbytes, dtype=np.uint8)
        entries_get = self._entries_get
        frames = self._frames_map
        for span in spans:
            e = entries_get(span[0])
            if e is None or e.access < _READ or span[0] not in frames:
                # Slow path: at least one page needs the fault handler.
                protocol = self.protocol
                has_access = protocol.has_access
                data = self._memory.data
                for page, off, boff, length in spans:
                    if not has_access(page, False):
                        yield from protocol.ensure_read(page)
                    out[boff : boff + length] = data(page)[off : off + length]
                break
        else:
            move = self._recency_move
            for page, off, boff, length in spans:
                move(page)
                out[boff : boff + length] = frames[page][off : off + length]
        self.counters.inc("shared_bytes_read", nbytes)
        yield Compute(nbytes * self.cpu.ns_per_byte_copy)
        return out

    def write_bytes(self, addr: int, data: Any) -> Generator[Effect, Any, None]:
        """Write a buffer (bytes / uint8 array) starting at ``addr``."""
        buf = np.asarray(
            np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else data,
            dtype=np.uint8,
        ).reshape(-1)
        nbytes = len(buf)
        protocol = self.protocol
        spans = self.layout.spans_list(addr, nbytes)
        if protocol.update_policy:
            for page, off, boff, length in spans:
                def writer(
                    frame: np.ndarray, off: int = off, boff: int = boff,
                    length: int = length,
                ) -> None:
                    frame[off : off + length] = buf[boff : boff + length]

                yield from protocol.locked_store(page, writer)
        else:
            entries_get = self._entries_get
            frames = self._frames_map
            for span in spans:
                e = entries_get(span[0])
                if e is None or e.access < _WRITE or span[0] not in frames:
                    has_access = protocol.has_access
                    data = self._memory.data
                    for page, off, boff, length in spans:
                        if not has_access(page, True):
                            yield from protocol.ensure_write(page)
                        data(page)[off : off + length] = buf[boff : boff + length]
                    break
            else:
                move = self._recency_move
                for page, off, boff, length in spans:
                    move(page)
                    frames[page][off : off + length] = buf[boff : boff + length]
        self.counters.inc("shared_bytes_written", nbytes)
        yield Compute(nbytes * self.cpu.ns_per_byte_copy)

    # ------------------------------------------------------------------
    # typed array access

    def read_array(
        self, addr: int, dtype: Any, count: int
    ) -> Generator[Effect, Any, np.ndarray]:
        """Read ``count`` items of ``dtype`` from ``addr``."""
        dt = np.dtype(dtype)
        raw = yield from self.read_bytes(addr, dt.itemsize * count)
        return raw.view(dt)

    def write_array(self, addr: int, values: np.ndarray) -> Generator[Effect, Any, None]:
        """Write a typed numpy array at ``addr``."""
        arr = np.ascontiguousarray(values)
        yield from self.write_bytes(addr, arr.view(np.uint8).reshape(-1))

    # ------------------------------------------------------------------
    # mapped (in-place) kernel access — no copy charge
    #
    # A DSM program's compute kernel dereferences mapped pages directly;
    # its operand-access time is part of the arithmetic cost the app
    # charges as flops.  These accessors therefore charge only the
    # coherence costs (faults, transfers) plus a small per-page touch,
    # not a per-byte memcpy — charging both would double-count.  Use
    # read_/write_ for genuine copies (buffers, record exchange), and
    # fetch_/store_ for kernel operands.

    def fetch_array(
        self, addr: int, dtype: Any, count: int
    ) -> Generator[Effect, Any, np.ndarray]:
        """Map ``count`` items of ``dtype`` for in-place kernel reads."""
        dt = np.dtype(dtype)
        nbytes = dt.itemsize * count
        spans = self.layout.spans_list(addr, nbytes)
        out = np.empty(nbytes, dtype=np.uint8)
        entries_get = self._entries_get
        frames = self._frames_map
        for span in spans:
            e = entries_get(span[0])
            if e is None or e.access < _READ or span[0] not in frames:
                protocol = self.protocol
                has_access = protocol.has_access
                data = self._memory.data
                for page, off, boff, length in spans:
                    if not has_access(page, False):
                        yield from protocol.ensure_read(page)
                    out[boff : boff + length] = data(page)[off : off + length]
                break
        else:
            move = self._recency_move
            for page, off, boff, length in spans:
                move(page)
                out[boff : boff + length] = frames[page][off : off + length]
        yield Compute(len(spans) * self.cpu.ns_per_op)
        return out.view(dt)

    def store_array(self, addr: int, values: np.ndarray) -> Generator[Effect, Any, None]:
        """Write kernel output in place (coherence costs only)."""
        arr = np.ascontiguousarray(values)
        buf = arr.view(np.uint8).reshape(-1)
        nbytes = len(buf)
        protocol = self.protocol
        spans = self.layout.spans_list(addr, nbytes)
        if protocol.update_policy:
            for page, off, boff, length in spans:
                def writer(
                    frame: np.ndarray, off: int = off, boff: int = boff,
                    length: int = length,
                ) -> None:
                    frame[off : off + length] = buf[boff : boff + length]

                yield from protocol.locked_store(page, writer)
        else:
            entries_get = self._entries_get
            frames = self._frames_map
            for span in spans:
                e = entries_get(span[0])
                if e is None or e.access < _WRITE or span[0] not in frames:
                    has_access = protocol.has_access
                    data = self._memory.data
                    for page, off, boff, length in spans:
                        if not has_access(page, True):
                            yield from protocol.ensure_write(page)
                        data(page)[off : off + length] = buf[boff : boff + length]
                    break
            else:
                move = self._recency_move
                for page, off, boff, length in spans:
                    move(page)
                    frames[page][off : off + length] = buf[boff : boff + length]
        yield Compute(len(spans) * self.cpu.ns_per_op)

    # ------------------------------------------------------------------
    # scalar helpers

    def read_f64(self, addr: int) -> Generator[Effect, Any, float]:
        span = self.layout.single_span(addr, 8)
        if span is not None:
            e = self._entries_get(span[0])
            frame = self._frames_map.get(span[0])
        else:
            e = frame = None
        if e is not None and frame is not None and e.access >= _READ:
            self._recency_move(span[0])
            value = _F64.unpack_from(frame, span[1])[0]
            self.counters.inc("shared_bytes_read", 8)
            yield Compute(8 * self.cpu.ns_per_byte_copy)
            return value
        arr = yield from self.read_array(addr, np.float64, 1)
        return float(arr[0])

    def write_f64(self, addr: int, value: float) -> Generator[Effect, Any, None]:
        span = self.layout.single_span(addr, 8)
        protocol = self.protocol
        if span is not None and not protocol.update_policy:
            e = self._entries_get(span[0])
            frame = self._frames_map.get(span[0])
        else:
            e = frame = None
        if e is not None and frame is not None and e.access >= _WRITE:
            self._recency_move(span[0])
            _F64.pack_into(frame, span[1], value)
            self.counters.inc("shared_bytes_written", 8)
            yield Compute(8 * self.cpu.ns_per_byte_copy)
            return
        yield from self.write_array(addr, np.array([value], dtype=np.float64))

    def read_i64(self, addr: int) -> Generator[Effect, Any, int]:
        span = self.layout.single_span(addr, 8)
        if span is not None:
            e = self._entries_get(span[0])
            frame = self._frames_map.get(span[0])
        else:
            e = frame = None
        if e is not None and frame is not None and e.access >= _READ:
            self._recency_move(span[0])
            value = _I64.unpack_from(frame, span[1])[0]
            self.counters.inc("shared_bytes_read", 8)
            yield Compute(8 * self.cpu.ns_per_byte_copy)
            return value
        arr = yield from self.read_array(addr, np.int64, 1)
        return int(arr[0])

    def write_i64(self, addr: int, value: int) -> Generator[Effect, Any, None]:
        span = self.layout.single_span(addr, 8)
        protocol = self.protocol
        if span is not None and not protocol.update_policy:
            e = self._entries_get(span[0])
            frame = self._frames_map.get(span[0])
        else:
            e = frame = None
        if e is not None and frame is not None and e.access >= _WRITE:
            self._recency_move(span[0])
            _I64.pack_into(frame, span[1], value)
            self.counters.inc("shared_bytes_written", 8)
            yield Compute(8 * self.cpu.ns_per_byte_copy)
            return
        yield from self.write_array(addr, np.array([value], dtype=np.int64))

    # ------------------------------------------------------------------
    # atomic single-page sections (substrate for repro.sync)

    def atomic_update(
        self, addr: int, nbytes: int, fn: Callable[[np.ndarray], Any]
    ) -> Generator[Effect, Any, Any]:
        """Atomically read-modify-write ``nbytes`` at ``addr``.

        ``fn`` receives a mutable uint8 view of the range and returns an
        arbitrary result.  The range must lie within a single page — the
        paper keeps each synchronisation record inside one page for
        exactly this reason (single-page critical sections cannot
        deadlock across nodes; see
        :meth:`repro.svm.protocol.CoherenceProtocol.acquire_page_write`).
        ``fn`` must be plain code: no yields, no access to other shared
        memory.
        """
        pages = list(self.layout.pages_spanned(addr, nbytes))
        if len(pages) != 1:
            raise ValueError(
                f"atomic range [{addr:#x}, +{nbytes}) spans {len(pages)} pages; "
                "synchronisation records must fit in one page"
            )
        page = pages[0]
        entry = yield from self.protocol.acquire_page_write(page)
        try:
            yield Compute(self.cpu.test_and_set)
            frame = self._memory.data(page)
            off = self.layout.offset_in_page(addr)
            result = fn(frame[off : off + nbytes])
            self.counters.inc("atomic_updates")
            if self.protocol.update_policy:
                yield from self.protocol.push_update_locked(page, entry)
        finally:
            self.protocol.release_page_write(page)
        return result
