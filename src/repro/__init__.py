"""ivy-svm: a full reproduction of IVY (Li, ICPP 1988) — a shared virtual
memory system for parallel computing — on a deterministic simulated
loosely-coupled multiprocessor.

Quick start::

    from repro import ClusterConfig, Ivy

    def main(ctx):
        addr = yield from ctx.malloc(1024)
        yield from ctx.write_f64(addr, 42.0)
        value = yield from ctx.read_f64(addr)
        return value

    ivy = Ivy(ClusterConfig(nodes=4))
    print(ivy.run(main))          # -> 42.0
    print(ivy.time_ns)            # simulated nanoseconds elapsed

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.config import (
    ClusterConfig,
    ConfigError,
    CpuConfig,
    DiskConfig,
    FabricConfig,
    MemoryConfig,
    MICROSECOND,
    MILLISECOND,
    RingConfig,
    SchedConfig,
    SECOND,
    SvmConfig,
)
from repro.api.cluster import Cluster, NodeContext
from repro.api.ivy import Ivy, IvyProcessContext

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "ConfigError",
    "CpuConfig",
    "FabricConfig",
    "RingConfig",
    "DiskConfig",
    "MemoryConfig",
    "SvmConfig",
    "SchedConfig",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "Cluster",
    "NodeContext",
    "Ivy",
    "IvyProcessContext",
    "__version__",
]
